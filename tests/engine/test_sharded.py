"""ShardedEngine unit tests: construction, routing, merging, events."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import (
    EngineConfig,
    EventLog,
    NeverReorganize,
    ShardedEngine,
    ShardedEventLog,
    derive_shard_configs,
    merge_query_results,
)
from repro.engine.sharded import _derive_seed, _validate_shard_configs
from repro.layouts import HashLayout, RangeLayoutBuilder
from repro.queries import Query, between
from repro.storage import QueryResult
from repro.workloads import tpch

SHARD_KEY = "l_orderkey"


@pytest.fixture(scope="module")
def bundle():
    return tpch.load(4_000, np.random.default_rng(0))


@pytest.fixture(scope="module")
def layouts(bundle):
    rng = np.random.default_rng(1)
    first = RangeLayoutBuilder(bundle.default_sort_column).build(
        bundle.table, [], 6, rng
    )
    second = RangeLayoutBuilder("l_quantity").build(bundle.table, [], 6, rng)
    return first, second


@pytest.fixture(scope="module")
def queries(bundle):
    return bundle.workload(6, 2, np.random.default_rng(2))


def make_engine(tmp_path, num_shards=4, **overrides):
    defaults = dict(store_root=tmp_path / "s", cleanup_on_close=True)
    defaults.update(overrides)
    return ShardedEngine(EngineConfig(**defaults), SHARD_KEY, num_shards)


class TestConstruction:
    def test_rejects_bad_knobs(self, tmp_path):
        config = EngineConfig(store_root=tmp_path / "s")
        with pytest.raises(ValueError, match="shard_key"):
            ShardedEngine(config, "", 4)
        with pytest.raises(ValueError, match="num_shards"):
            ShardedEngine(config, SHARD_KEY, 0)
        with pytest.raises(ValueError, match="max_workers"):
            ShardedEngine(config, SHARD_KEY, 4, max_workers=0)

    def test_derived_configs_are_deterministic_and_distinct(self, tmp_path):
        config = EngineConfig(store_root=tmp_path / "s", alpha=80.0, seed=7)
        first = derive_shard_configs(config, 4)
        second = derive_shard_configs(config, 4)
        assert [c.seed for c in first] == [c.seed for c in second]
        assert len({c.seed for c in first}) == 4
        assert len({str(c.store_root) for c in first}) == 4
        assert all(str(c.store_root).startswith(str(tmp_path / "s")) for c in first)

    def test_derived_seeds_are_well_mixed(self):
        # adjacent base seeds must not produce overlapping shard streams
        seeds = {_derive_seed(base, shard) for base in range(4) for shard in range(4)}
        assert len(seeds) == 16

    def test_alpha_splits_across_shards(self, tmp_path):
        config = EngineConfig(store_root=tmp_path / "s", alpha=80.0)
        configs = derive_shard_configs(config, 4)
        assert [c.alpha for c in configs] == [20.0] * 4
        untracked = EngineConfig(store_root=tmp_path / "u")
        assert all(c.alpha is None for c in derive_shard_configs(untracked, 4))

    def test_derive_rejects_nonpositive_shards(self, tmp_path):
        with pytest.raises(ValueError, match="num_shards"):
            derive_shard_configs(EngineConfig(store_root=tmp_path / "s"), 0)

    def test_cloned_config_rejected(self, tmp_path):
        """The original bug: one config cloned per shard shares the seed
        and the store root — both must be rejected at construction."""
        config = EngineConfig(store_root=tmp_path / "s")
        with pytest.raises(ValueError, match="store root"):
            ShardedEngine(config, SHARD_KEY, 2, shard_configs=[config, config])

    def test_duplicate_seeds_rejected(self, tmp_path):
        config = EngineConfig(store_root=tmp_path / "s", seed=3)
        clones = [
            config.with_overrides(store_root=tmp_path / "s" / f"shard-{i}")
            for i in range(3)
        ]
        with pytest.raises(ValueError, match="seed"):
            ShardedEngine(config, SHARD_KEY, 3, shard_configs=clones)
        distinct = [c.with_overrides(seed=i) for i, c in enumerate(clones)]
        _validate_shard_configs(distinct)  # fixed clones pass

    def test_duplicate_roots_resolved_not_textual(self, tmp_path):
        """`a/../b` and `b` are the same directory; validation resolves."""
        config = EngineConfig(store_root=tmp_path / "s")
        sneaky = [
            config.with_overrides(store_root=tmp_path / "b", seed=0),
            config.with_overrides(store_root=tmp_path / "a" / ".." / "b", seed=1),
        ]
        with pytest.raises(ValueError, match="store root"):
            _validate_shard_configs(sneaky)

    def test_wrong_shard_config_count_rejected(self, tmp_path):
        config = EngineConfig(store_root=tmp_path / "s")
        with pytest.raises(ValueError, match="expected 4"):
            ShardedEngine(
                config, SHARD_KEY, 4, shard_configs=derive_shard_configs(config, 2)
            )

    def test_policy_factory_builds_one_policy_per_shard(self, tmp_path):
        calls: list[int] = []

        def factory(shard: int) -> NeverReorganize:
            calls.append(shard)
            return NeverReorganize()

        engine = ShardedEngine(
            EngineConfig(store_root=tmp_path / "s"),
            SHARD_KEY,
            3,
            policy_factory=factory,
        )
        assert calls == [0, 1, 2]
        policies = [shard.policy for shard in engine.shards]
        assert len({id(p) for p in policies}) == 3


class TestRouting:
    def test_assignments_match_hash_layout(self, tmp_path, bundle):
        engine = make_engine(tmp_path, num_shards=4)
        expected = HashLayout(SHARD_KEY, 4).assign(bundle.table)
        np.testing.assert_array_equal(engine.shard_assignments(bundle.table), expected)

    def test_open_places_every_row_on_its_hash_shard(self, tmp_path, bundle, layouts):
        first, _ = layouts
        with make_engine(tmp_path).open(bundle.table, first) as engine:
            assignments = engine.shard_assignments(bundle.table)
            for shard, shard_engine in enumerate(engine.shards):
                expected = int(np.count_nonzero(assignments == shard))
                if expected == 0:
                    assert not shard_engine.holds_data
                else:
                    assert shard_engine.stored().total_rows == expected
            totals = sum(
                e.stored().total_rows for e in engine.shards if e.holds_data
            )
            assert totals == bundle.table.num_rows

    def test_open_rejects_missing_shard_key(self, tmp_path, bundle, layouts):
        first, _ = layouts
        engine = ShardedEngine(
            EngineConfig(store_root=tmp_path / "s"), "no_such_column", 4
        )
        with pytest.raises(ValueError, match="no_such_column"):
            engine.open(bundle.table, first)
        # the failed open left nothing half-open
        with pytest.raises(RuntimeError, match="not open"):
            engine.stats()

    def test_ingest_routes_rows_and_counts_files(self, tmp_path, bundle):
        config_extra = dict(
            builder=RangeLayoutBuilder(bundle.default_sort_column),
            data_sample_fraction=0.5,
            num_partitions=2,
        )
        batch = bundle.table.sample(0.5, np.random.default_rng(3))
        with make_engine(tmp_path, **config_extra) as engine:
            written = engine.ingest(batch)
            assert written > 0
            assert engine.ingest(batch.take(np.array([], dtype=np.int64))) == 0
            assignments = engine.shard_assignments(batch)
            for shard, shard_engine in enumerate(engine.shards):
                expected = int(np.count_nonzero(assignments == shard))
                assert shard_engine.stats().rows_ingested == expected
            assert engine.stats().rows_ingested == batch.num_rows

    def test_ingest_rejects_missing_shard_key(self, tmp_path, simple_table):
        with make_engine(tmp_path) as engine:
            with pytest.raises(ValueError, match=SHARD_KEY):
                engine.ingest(simple_table)


class TestQuerying:
    def test_query_matches_brute_force(self, tmp_path, bundle, layouts, queries):
        first, _ = layouts
        with make_engine(tmp_path).open(bundle.table, first) as engine:
            for query in queries:
                merged = engine.query(query)
                expected = int(query.predicate.evaluate(bundle.table.columns).sum())
                assert merged.rows_matched == expected
                assert merged.total_rows == bundle.table.num_rows

    def test_query_batch_merges_per_query(self, tmp_path, bundle, layouts, queries):
        first, _ = layouts
        with make_engine(tmp_path).open(bundle.table, first) as engine:
            merged = engine.query_batch(queries)
            assert len(merged) == len(queries)
            for query, result in zip(queries, merged, strict=True):
                expected = int(query.predicate.evaluate(bundle.table.columns).sum())
                assert result.rows_matched == expected
            assert engine.query_batch([]) == []

    def test_query_requires_data(self, tmp_path):
        with make_engine(
            tmp_path, builder=RangeLayoutBuilder("l_orderkey")
        ) as engine:
            query = Query(predicate=between("l_orderkey", 0.0, 1.0))
            with pytest.raises(RuntimeError, match="holds no data"):
                engine.query(query)
            with pytest.raises(RuntimeError, match="holds no data"):
                engine.query_batch([query])

    def test_merge_query_results_sums_and_takes_critical_path(self):
        results = [
            QueryResult(1, 10, 100, 2, 4, 1000, 0.5),
            QueryResult(2, 20, 200, 1, 4, 2000, 0.25),
        ]
        merged = merge_query_results(results)
        assert merged.rows_matched == 3
        assert merged.rows_scanned == 30
        assert merged.total_rows == 300
        assert merged.partitions_scanned == 3
        assert merged.partitions_total == 8
        assert merged.bytes_read == 3000
        assert merged.elapsed_seconds == 0.5  # max, not sum: shards overlap

    def test_merge_query_results_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            merge_query_results([])


class TestLifecycle:
    def test_double_open_raises_and_close_is_idempotent(
        self, tmp_path, bundle, layouts
    ):
        first, _ = layouts
        engine = make_engine(tmp_path).open(bundle.table, first)
        with pytest.raises(RuntimeError, match="already open"):
            engine.open(bundle.table, first)
        engine.close()
        engine.close()

    def test_calls_require_open(self, tmp_path, bundle):
        engine = make_engine(tmp_path)
        for call in (
            lambda: engine.ingest(bundle.table),
            lambda: engine.run_until_idle(),
            lambda: engine.abort_reorg(),
            lambda: engine.step(),
            lambda: engine.stats(),
        ):
            with pytest.raises(RuntimeError, match="not open"):
                call()

    def test_views(self, tmp_path, bundle, layouts):
        first, _ = layouts
        engine = make_engine(tmp_path, num_shards=3)
        assert engine.num_shards == 3
        assert engine.shard_key == SHARD_KEY
        assert len(engine.shards) == 3
        assert not engine.holds_data
        with engine.open(bundle.table, first):
            assert engine.holds_data
            assert not engine.reorg_active
            assert len(engine.shard_stats()) == 3


class TestReorgRouting:
    def test_full_reorg_charges_exactly_alpha(self, tmp_path, bundle, layouts):
        first, second = layouts
        with make_engine(tmp_path, alpha=80.0).open(bundle.table, first) as engine:
            engine.reorganize(second)
            stats = engine.stats()
            assert stats.movement_charged == pytest.approx(80.0)
            data_shards = [e for e in engine.shards if e.holds_data]
            assert stats.num_switches == len(data_shards)
            for shard_engine in data_shards:
                assert shard_engine.stats().movement_charged == pytest.approx(
                    80.0 / 4
                )

    def test_single_shard_reorg_leaves_others_untouched(
        self, tmp_path, bundle, layouts
    ):
        first, second = layouts
        with make_engine(tmp_path, alpha=80.0).open(bundle.table, first) as engine:
            engine.reorganize(second, shards=[0])
            per_shard = engine.shard_stats()
            assert per_shard[0].num_switches == 1
            assert all(s.num_switches == 0 for s in per_shard[1:])

    def test_reorganize_rejects_out_of_range_shard(self, tmp_path, bundle, layouts):
        first, second = layouts
        with make_engine(tmp_path).open(bundle.table, first) as engine:
            with pytest.raises(ValueError, match="out of range"):
                engine.reorganize(second, shards=[4])

    def test_pipelined_step_and_drain(self, tmp_path, bundle, layouts):
        first, second = layouts
        with make_engine(
            tmp_path, alpha=80.0, async_reorg=True, step_partitions=1
        ).open(bundle.table, first) as engine:
            engine.reorganize(second, shards=[0])
            assert engine.reorg_active
            stepped = engine.step()
            assert set(stepped) == {0}  # only the moving shard stepped
            engine.run_until_idle()
            assert not engine.reorg_active
            assert engine.step() == {}
            assert engine.shard_stats()[0].reorgs_completed == 1

    def test_abort_refunds_summed_installments(self, tmp_path, bundle, layouts):
        first, second = layouts
        with make_engine(
            tmp_path, alpha=80.0, async_reorg=True, step_partitions=1
        ).open(bundle.table, first) as engine:
            engine.reorganize(second)
            engine.step()
            refund = engine.abort_reorg()
            assert refund > 0.0
            assert not engine.reorg_active
            assert engine.stats().movement_charged == 0.0
            assert engine.abort_reorg() == 0.0


class TestShardedEvents:
    def test_tagged_stream_covers_every_shard(self, tmp_path, bundle, layouts):
        first, _ = layouts
        log = ShardedEventLog()
        engine = ShardedEngine(
            EngineConfig(store_root=tmp_path / "s", cleanup_on_close=True),
            SHARD_KEY,
            4,
            shard_events=log,
        )
        query = Query(predicate=between("l_quantity", 0.0, 10.0))
        with engine.open(bundle.table, first):
            engine.query(query)
        shards_seen = {shard for shard, _, _ in log.records}
        assert shards_seen == set(range(4))
        for shard in range(4):
            names = log.names(shard)
            assert names[0] == "open"
            assert names[-1] == "close"
            assert log.for_shard(shard)[0] == ("open", {})
        served = [s for s, name, _ in log.records if name == "query_served"]
        assert sorted(served) == sorted(
            s for s, e in enumerate(engine.shards) if e.holds_data
        )

    def test_shared_observer_sees_all_shards(self, tmp_path, bundle, layouts):
        first, _ = layouts
        shared = EventLog()
        engine = ShardedEngine(
            EngineConfig(store_root=tmp_path / "s", cleanup_on_close=True),
            SHARD_KEY,
            4,
            events=shared,
        )
        with engine.open(bundle.table, first):
            pass
        assert shared.names().count("open") == 4
        assert shared.names().count("close") == 4

    def test_tagged_payloads_match_event_log_schema(self, tmp_path, bundle, layouts):
        first, second = layouts
        tagged = ShardedEventLog()
        shared = EventLog()
        engine = ShardedEngine(
            EngineConfig(store_root=tmp_path / "s", alpha=8.0, cleanup_on_close=True),
            SHARD_KEY,
            2,
            events=shared,
            shard_events=tagged,
        )
        with engine.open(bundle.table, first):
            engine.reorganize(second)
        # a tagged record is exactly an EventLog record plus its shard
        # tag: every (name, payload) also appears in the shared log, and
        # both observers saw the same number of events
        flat = list(shared.records)
        assert len(tagged.records) == len(flat)
        for shard in range(2):
            own = tagged.for_shard(shard)
            assert own  # both shards held data and fired events
            for name, payload in own:
                assert (name, payload) in flat
