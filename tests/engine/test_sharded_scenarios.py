"""4-shard ShardedEngine vs single engine through the multi-tenant pack.

The multi-tenant pack is shard-aware (``shard_key = "tenant"``): routed
through a hash-sharded fleet, each tenant's rows land on exactly one
shard.  Replaying the *same* scripted event stream — every ingest batch,
every query, every phase marker, and a mid-stream reorganization into
the tenant-clustered candidate — through a 4-shard router and through
one engine must produce identical per-row results and equal movement
ledgers (per-shard α = α/N sums back to the single engine's α).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import EngineConfig, EventLog, LayoutEngine, ShardedEngine
from repro.layouts import RangeLayoutBuilder
from repro.workloads import IngestEvent, MultiTenantPack, QueryEvent

ALPHA = 40.0
NUM_SHARDS = 4
PARTITIONS = 8


@pytest.fixture(scope="module")
def pack():
    return MultiTenantPack(
        seed=2, num_events=60, base_rows=1_500, ingest_rows=150, num_tenants=16
    )


@pytest.fixture(scope="module")
def reorg_target(pack):
    # The tenant-clustered candidate: what a policy would switch to when
    # tenant point-lookups dominate.
    return pack.candidate_layouts(pack.full_table(), PARTITIONS)[0]


def drive(engine, pack, reorg_target, reorg_at: int):
    """Replay the pack's stream; reorganize at event ``reorg_at``.

    Returns (per-query rows_matched, final stats).
    """
    matched = []
    engine.ingest(pack.base_table())
    last_phase = None
    for index, event in enumerate(pack.events()):
        if event.phase != last_phase:
            engine.mark_phase(pack.name, event.phase)
            last_phase = event.phase
        if index == reorg_at:
            engine.reorganize(reorg_target)
            engine.run_until_idle()
        if isinstance(event, IngestEvent):
            engine.ingest(event.batch)
        else:
            assert isinstance(event, QueryEvent)
            matched.append(engine.query(event.query).rows_matched)
    return matched, engine.stats()


def test_4_shard_run_equals_single_engine_on_the_same_stream(tmp_path, pack, reorg_target):
    reorg_at = pack.num_events // 2
    single_log, sharded_log = EventLog(), EventLog()

    single_config = EngineConfig(
        store_root=tmp_path / "single", alpha=ALPHA,
        builder=RangeLayoutBuilder(pack.default_sort_column),
        num_partitions=PARTITIONS, cleanup_on_close=True,
    )
    with LayoutEngine(single_config, events=single_log) as single:
        single_matched, single_stats = drive(single, pack, reorg_target, reorg_at)

    sharded_config = single_config.with_overrides(store_root=tmp_path / "sharded")
    with ShardedEngine(
        sharded_config, pack.shard_key, NUM_SHARDS, events=sharded_log
    ).open() as sharded:
        sharded_matched, sharded_stats = drive(sharded, pack, reorg_target, reorg_at)
        data_shards = sum(e.holds_data for e in sharded.shards)

    # Per-row results: every query matches exactly the same rows.
    assert sharded_matched == single_matched
    # Merged ledgers equal the single engine's: same rows ingested, the
    # reorganization's movement charge sums back to one α (16 tenants
    # over 4 shards leave no shard empty, so every shard moved).
    assert data_shards == NUM_SHARDS
    assert sharded_stats.rows_ingested == single_stats.rows_ingested
    assert sharded_stats.movement_charged == pytest.approx(
        single_stats.movement_charged
    )
    assert single_stats.movement_charged == pytest.approx(ALPHA)
    # One logical reorganization; the fleet performs it once per shard.
    assert single_stats.reorgs_completed == 1
    assert sharded_stats.reorgs_completed == NUM_SHARDS

    # Phase markers reached both engines identically.  The shared fleet
    # log records one relay per shard per marker; mark_phase is a fan-out
    # barrier, so markers group in stream order.
    single_phases = [p for n, p in single_log.records if n == "scenario_phase"]
    sharded_phases = [p for n, p in sharded_log.records if n == "scenario_phase"]
    assert sharded_phases == [
        phase for phase in single_phases for _ in range(NUM_SHARDS)
    ]


def test_every_tenants_rows_land_on_exactly_one_shard(tmp_path, pack):
    config = EngineConfig(
        store_root=tmp_path / "fleet", alpha=ALPHA,
        builder=RangeLayoutBuilder(pack.default_sort_column),
        num_partitions=PARTITIONS, cleanup_on_close=True,
    )
    full = pack.full_table()
    with ShardedEngine(config, pack.shard_key, NUM_SHARDS).open() as sharded:
        assignments = sharded.shard_assignments(full)
        sharded.ingest(full)
        per_shard_rows = [
            e.stored().total_rows if e.holds_data else 0 for e in sharded.shards
        ]
    # Shard placement is a pure function of the tenant key: no tenant is
    # ever split, which is what makes per-tenant scans single-shard.
    tenants = full["tenant"]
    for tenant in np.unique(tenants):
        shards = np.unique(assignments[tenants == tenant])
        assert shards.size == 1, f"tenant {tenant} split across shards {shards}"
    # And the fleet holds exactly the routed rows, nothing duplicated.
    assert sum(per_shard_rows) == full.num_rows
    for shard, rows in enumerate(per_shard_rows):
        assert rows == int(np.sum(assignments == shard))
