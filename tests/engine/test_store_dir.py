"""StoreDir: the manifest + durable-ingest-log contract behind the CLI/server."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.engine import (
    LayoutEngine,
    ShardedEngine,
    ShardSpec,
    StoreDir,
    StoreManifest,
    make_builder,
    schema_from_dict,
    schema_to_dict,
    table_from_columns,
    table_from_rows,
)
from repro.queries import Query, ge
from repro.storage import ColumnSpec, Schema, Table


@pytest.fixture
def schema() -> Schema:
    return Schema(
        columns=(
            ColumnSpec("x", "numeric"),
            ColumnSpec("color", "categorical", ("red", "green", "blue")),
        )
    )


def _batch(schema: Schema, rng: np.random.Generator, n: int = 200) -> Table:
    return Table(
        schema,
        {
            "x": rng.uniform(0.0, 100.0, size=n),
            "color": rng.integers(0, 3, size=n).astype(np.int64),
        },
    )


def _manifest(schema: Schema, **overrides) -> StoreManifest:
    defaults = dict(
        schema=schema,
        builder={"kind": "range", "column": "x"},
        engine={"num_partitions": 4, "alpha": 2.0},
    )
    defaults.update(overrides)
    return StoreManifest(**defaults)


# ---------------------------------------------------------------- schema serde
def test_schema_round_trips_through_manifest_dicts(schema):
    assert schema_from_dict(schema_to_dict(schema)) == schema


def test_manifest_round_trips_including_shards(schema):
    manifest = _manifest(schema, shards=ShardSpec(4, "x"))
    assert StoreManifest.from_dict(manifest.to_dict()) == manifest


def test_manifest_rejects_unknown_engine_keys(schema):
    with pytest.raises(ValueError, match="unknown engine keys.*bogus"):
        _manifest(schema, engine={"bogus": 1})


def test_manifest_rejects_shard_key_not_in_schema(schema):
    with pytest.raises(ValueError, match="shard key"):
        _manifest(schema, shards=ShardSpec(2, "nope"))


def test_make_builder_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown builder kind"):
        make_builder({"kind": "mystery"})
    with pytest.raises(ValueError, match="requires a 'column'"):
        make_builder({"kind": "hash"})
    with pytest.raises(ValueError, match="'columns' list"):
        make_builder({"kind": "zorder"})


# ------------------------------------------------------------------ lifecycle
def test_initialize_writes_manifest_and_refuses_overwrite(tmp_path, schema):
    store = StoreDir.initialize(tmp_path / "s", _manifest(schema))
    assert store.exists()
    on_disk = json.loads(store.manifest_path.read_text())
    assert on_disk["version"] == 1
    with pytest.raises(FileExistsError):
        StoreDir.initialize(tmp_path / "s", _manifest(schema))


def test_open_uninitialized_store_raises(tmp_path):
    with pytest.raises(FileNotFoundError, match="no store manifest"):
        _ = StoreDir(tmp_path / "missing").manifest


# ----------------------------------------------------------------- ingest log
def test_append_and_replay_preserves_rows_in_order(tmp_path, schema, rng):
    store = StoreDir.initialize(tmp_path / "s", _manifest(schema))
    batches = [_batch(schema, rng) for _ in range(3)]
    for batch in batches:
        store.append_batch(batch)
    assert store.batches_logged == 3
    replayed = store.read_batches()
    assert len(replayed) == 3
    for original, restored in zip(batches, replayed, strict=True):
        np.testing.assert_array_equal(original["x"], restored["x"])
        np.testing.assert_array_equal(original["color"], restored["color"])


def test_append_rejects_schema_mismatch_and_empty(tmp_path, schema, rng):
    store = StoreDir.initialize(tmp_path / "s", _manifest(schema))
    other = Schema(columns=(ColumnSpec("z", "numeric"),))
    with pytest.raises(ValueError, match="schema"):
        store.append_batch(Table(other, {"z": rng.uniform(size=5)}))
    with pytest.raises(ValueError, match="empty"):
        store.append_batch(
            Table(schema, {"x": np.zeros(0), "color": np.zeros(0, dtype=np.int64)})
        )


def test_truncated_tail_batch_is_dropped_not_fatal(tmp_path, schema, rng):
    store = StoreDir.initialize(tmp_path / "s", _manifest(schema))
    store.append_batch(_batch(schema, rng))
    tail = store.append_batch(_batch(schema, rng))
    tail.write_bytes(tail.read_bytes()[:40])  # simulate a write cut by a crash
    replayed = store.read_batches()
    assert len(replayed) == 1  # the acknowledged batch survives; the tail drops


def test_corruption_before_the_tail_raises(tmp_path, schema, rng):
    store = StoreDir.initialize(tmp_path / "s", _manifest(schema))
    first = store.append_batch(_batch(schema, rng))
    store.append_batch(_batch(schema, rng))
    first.write_bytes(b"garbage")
    with pytest.raises(RuntimeError, match="corrupt"):
        store.read_batches()


# --------------------------------------------------------------------- engine
def test_open_engine_replays_log_single(tmp_path, schema, rng):
    store = StoreDir.initialize(tmp_path / "s", _manifest(schema))
    total = 0
    for _ in range(2):
        batch = _batch(schema, rng)
        total += batch.num_rows
        store.append_batch(batch)
    engine = store.open_engine()
    try:
        assert isinstance(engine, LayoutEngine)
        result = engine.query(Query(ge("x", 50.0)))
        assert result.total_rows == total == store.rows_logged()
    finally:
        engine.close()


def test_open_engine_replays_log_sharded(tmp_path, schema, rng):
    store = StoreDir.initialize(
        tmp_path / "s", _manifest(schema, shards=ShardSpec(4, "x"))
    )
    store.append_batch(_batch(schema, rng))
    engine = store.open_engine()
    try:
        assert isinstance(engine, ShardedEngine)
        assert engine.num_shards == 4
        assert engine.query(Query(ge("x", 0.0))).rows_matched == 200
    finally:
        engine.close()


def test_reopen_after_reorg_matches_first_open(tmp_path, schema, rng):
    """Derived state is rebuilt: query results identical across reopens."""
    store = StoreDir.initialize(tmp_path / "s", _manifest(schema))
    store.append_batch(_batch(schema, rng))
    query = Query(ge("x", 25.0))
    engine = store.open_engine()
    first = engine.query(query)
    engine.close()
    engine = store.open_engine()
    try:
        second = engine.query(query)
        assert (second.rows_matched, second.total_rows) == (
            first.rows_matched,
            first.total_rows,
        )
    finally:
        engine.close()


def test_open_engine_discards_derived_debris(tmp_path, schema, rng):
    """Stale files under data/ (a crashed process's leftovers) are wiped."""
    store = StoreDir.initialize(tmp_path / "s", _manifest(schema))
    store.append_batch(_batch(schema, rng))
    engine = store.open_engine()
    engine.close()
    debris = store.data_root / "range-0.staging"
    debris.mkdir(parents=True, exist_ok=True)
    (debris / "part-00099.npz").write_bytes(b"partial")
    engine = store.open_engine()
    try:
        assert engine.query(Query(ge("x", 0.0))).total_rows == 200
        assert not debris.exists()
    finally:
        engine.close()


def test_single_engine_event_stream_is_shard_tagged(tmp_path, schema, rng):
    from repro.server.events import EventRing

    store = StoreDir.initialize(tmp_path / "s", _manifest(schema))
    store.append_batch(_batch(schema, rng))
    ring = EventRing()
    engine = store.open_engine(shard_events=ring)
    engine.close()
    names = [record["event"] for record in ring.tail()]
    assert names and all(record["shard"] == 0 for record in ring.tail())
    assert any("ingest" in name for name in names)


# ------------------------------------------------------------- table builders
def test_table_from_rows_encodes_categoricals(schema):
    table = table_from_rows(
        schema, [{"x": "1.5", "color": "red"}, {"x": 2, "color": "blue"}]
    )
    np.testing.assert_array_equal(table["x"], [1.5, 2.0])
    np.testing.assert_array_equal(table["color"], [0, 2])


def test_table_from_rows_rejects_bad_payloads(schema):
    with pytest.raises(ValueError, match="no rows"):
        table_from_rows(schema, [])
    with pytest.raises(ValueError, match="missing column"):
        table_from_rows(schema, [{"x": 1}])
    with pytest.raises(ValueError, match="not in vocabulary"):
        table_from_rows(schema, [{"x": 1, "color": "mauve"}])
    with pytest.raises(ValueError, match="non-numeric"):
        table_from_rows(schema, [{"x": "wat", "color": "red"}])


def test_table_from_columns_validates_shape(schema):
    with pytest.raises(ValueError, match="missing columns"):
        table_from_columns(schema, {"x": [1.0]})
    with pytest.raises(ValueError, match="unknown columns"):
        table_from_columns(schema, {"x": [1.0], "color": [0], "zz": [1]})
    with pytest.raises(ValueError, match="unequal lengths"):
        table_from_columns(schema, {"x": [1.0, 2.0], "color": [0]})
    with pytest.raises(ValueError, match="out of range"):
        table_from_columns(schema, {"x": [1.0], "color": [7]})
