"""LayoutEngine facade unit tests: lifecycle, serving, policies, reorgs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import (
    Decision,
    EngineConfig,
    EventLog,
    GreedyPolicy,
    LayoutEngine,
    NeverReorganize,
    OreoPolicy,
    ReorgPolicy,
    SchedulePolicy,
)
from repro.core import OREO, OreoConfig
from repro.layouts import QdTreeBuilder, RangeLayoutBuilder
from repro.queries import Query, between
from repro.workloads import tpch


@pytest.fixture(scope="module")
def bundle():
    return tpch.load(4_000, np.random.default_rng(0))


@pytest.fixture(scope="module")
def layouts(bundle):
    rng = np.random.default_rng(1)
    first = RangeLayoutBuilder(bundle.default_sort_column).build(
        bundle.table, [], 6, rng
    )
    second = RangeLayoutBuilder("l_quantity").build(bundle.table, [], 6, rng)
    return first, second


@pytest.fixture(scope="module")
def queries(bundle):
    rng = np.random.default_rng(2)
    values = bundle.table["l_quantity"]
    lo, hi = float(np.min(values)), float(np.max(values))
    span = (hi - lo) / 16.0
    return [
        Query(predicate=between("l_quantity", float(s), float(s) + span))
        for s in rng.uniform(lo, hi - span, size=24)
    ]


class TestLifecycle:
    def test_open_close_materialized(self, tmp_path, bundle, layouts, queries):
        first, _ = layouts
        config = EngineConfig(store_root=tmp_path / "s", cleanup_on_close=True)
        engine = LayoutEngine(config).open(bundle.table, first)
        assert engine.current_layout is first
        result = engine.query(queries[0])
        assert result.total_rows == bundle.table.num_rows
        engine.close()
        assert not list((tmp_path / "s").rglob("*.npz"))
        engine.close()  # idempotent

    def test_double_open_rejected(self, tmp_path, bundle, layouts):
        first, _ = layouts
        config = EngineConfig(store_root=tmp_path / "s")
        engine = LayoutEngine(config).open(bundle.table, first)
        with pytest.raises(RuntimeError, match="already open"):
            engine.open(bundle.table, first)
        engine.close()

    def test_reopen_after_close_starts_fresh(self, tmp_path, bundle, layouts, queries):
        first, second = layouts
        config = EngineConfig(store_root=tmp_path / "s", cleanup_on_close=True)
        engine = LayoutEngine(config)
        with engine.open(bundle.table, first):
            engine.query(queries[0])
        assert engine.stats().queries_served == 1  # readable after close
        # a fresh lifetime: state and counters reset, files re-materialized
        with engine.open(bundle.table, second):
            result = engine.query(queries[0])
            assert result.total_rows == bundle.table.num_rows
            assert engine.stats().queries_served == 1
            assert engine.current_layout is second

    def test_reopen_streaming_after_materialized(self, tmp_path, bundle, layouts):
        first, _ = layouts
        config = EngineConfig(
            store_root=tmp_path / "s",
            builder=RangeLayoutBuilder(bundle.default_sort_column),
            data_sample_fraction=0.5,
            cleanup_on_close=True,
        )
        engine = LayoutEngine(config)
        with engine.open(bundle.table, first):
            pass
        with engine:  # reopened without a table: streaming mode now valid
            assert engine.ingest(bundle.table.sample(0.3, np.random.default_rng(0))) > 0

    def test_query_before_open_rejected(self, tmp_path, queries):
        engine = LayoutEngine(EngineConfig(store_root=tmp_path / "s"))
        with pytest.raises(RuntimeError, match="not open"):
            engine.query(queries[0])

    def test_context_manager_opens_streaming(self, tmp_path, bundle):
        config = EngineConfig(
            store_root=tmp_path / "s",
            builder=RangeLayoutBuilder(bundle.default_sort_column),
            data_sample_fraction=0.5,
        )
        with LayoutEngine(config) as engine:
            written = engine.ingest(bundle.table)
            assert written > 0
            assert engine.stats().rows_ingested == bundle.table.num_rows

    def test_empty_engine_query_rejected(self, tmp_path, queries):
        with LayoutEngine(EngineConfig(store_root=tmp_path / "s")) as engine:
            with pytest.raises(RuntimeError, match="no data"):
                engine.query(queries[0])

    def test_derive_layout_requires_builder(self, tmp_path, bundle):
        with LayoutEngine(EngineConfig(store_root=tmp_path / "s")) as engine:
            with pytest.raises(RuntimeError, match="builder"):
                engine.ingest(bundle.table)

    def test_materialized_engine_refuses_ingest(self, tmp_path, bundle, layouts):
        first, _ = layouts
        config = EngineConfig(store_root=tmp_path / "s", cleanup_on_close=True)
        with LayoutEngine(config).open(bundle.table, first) as engine:
            with pytest.raises(RuntimeError, match="materialized"):
                engine.ingest(bundle.table)


class TestServing:
    def test_query_batch_matches_execute(self, tmp_path, bundle, layouts, queries):
        first, _ = layouts
        config = EngineConfig(store_root=tmp_path / "s", cleanup_on_close=True)
        with LayoutEngine(config).open(bundle.table, first) as engine:
            batch = engine.query_batch(queries[:6])
            singles = [engine.query(q) for q in queries[:6]]
            assert [r.rows_matched for r in batch] == [
                r.rows_matched for r in singles
            ]
            assert [r.rows_scanned for r in batch] == [
                r.rows_scanned for r in singles
            ]
            assert engine.stats().queries_served == 12

    def test_query_batch_empty(self, tmp_path, bundle, layouts):
        first, _ = layouts
        config = EngineConfig(store_root=tmp_path / "s", cleanup_on_close=True)
        with LayoutEngine(config).open(bundle.table, first) as engine:
            assert engine.query_batch([]) == []

    def test_stats_accumulate(self, tmp_path, bundle, layouts, queries):
        first, _ = layouts
        config = EngineConfig(store_root=tmp_path / "s", cleanup_on_close=True)
        with LayoutEngine(config).open(bundle.table, first) as engine:
            for query in queries[:4]:
                engine.query(query)
            stats = engine.stats()
            assert stats.queries_served == 4
            assert stats.bytes_read > 0
            assert stats.num_switches == 0


class TestManualReorg:
    def test_sync_reorganize(self, tmp_path, bundle, layouts, queries):
        first, second = layouts
        config = EngineConfig(
            store_root=tmp_path / "s", alpha=7.0, cleanup_on_close=True
        )
        with LayoutEngine(config).open(bundle.table, first) as engine:
            before = engine.query(queries[0])
            engine.reorganize(second)
            after = engine.query(queries[0])
            assert engine.current_layout is second
            stats = engine.stats()
            assert stats.num_switches == 1
            assert stats.reorgs_completed == 1
            assert stats.movement_charged == 7.0
            assert stats.reorg_seconds > 0.0
            assert before.rows_matched == after.rows_matched

    def test_sync_reorganize_same_id_noop(self, tmp_path, bundle, layouts):
        first, _ = layouts
        config = EngineConfig(store_root=tmp_path / "s", cleanup_on_close=True)
        with LayoutEngine(config).open(bundle.table, first) as engine:
            engine.reorganize(first)
            assert engine.stats().num_switches == 0

    def test_pipelined_reorganize_serves_old_epoch(
        self, tmp_path, bundle, layouts, queries
    ):
        first, second = layouts
        config = EngineConfig(
            store_root=tmp_path / "s",
            alpha=7.0,
            async_reorg=True,
            step_partitions=1,
            cleanup_on_close=True,
        )
        with LayoutEngine(config).open(bundle.table, first) as engine:
            engine.reorganize(second)
            assert engine.reorg_active
            assert engine.stored().layout is first  # old epoch until the flip
            matched = engine.query(queries[0]).rows_matched
            engine.run_until_idle()
            assert not engine.reorg_active
            assert engine.stored().layout is second
            assert engine.query(queries[0]).rows_matched == matched
            stats = engine.stats()
            assert stats.reorgs_completed == 1
            assert stats.movement_charged == pytest.approx(7.0)

    def test_pipelined_step_returns_none_when_idle(self, tmp_path, bundle, layouts):
        first, _ = layouts
        config = EngineConfig(
            store_root=tmp_path / "s", async_reorg=True, cleanup_on_close=True
        )
        with LayoutEngine(config).open(bundle.table, first) as engine:
            assert engine.step() is None

    def test_back_to_back_reorgs_serialize(self, tmp_path, bundle, layouts, queries):
        first, second = layouts
        config = EngineConfig(
            store_root=tmp_path / "s",
            alpha=3.0,
            async_reorg=True,
            step_partitions=1,
            cleanup_on_close=True,
        )
        rng = np.random.default_rng(7)
        third = RangeLayoutBuilder("l_extendedprice").build(bundle.table, [], 4, rng)
        with LayoutEngine(config).open(bundle.table, first) as engine:
            engine.reorganize(second)
            assert engine.reorg_active
            engine.reorganize(third)  # drains the in-flight move first
            engine.run_until_idle()
            stats = engine.stats()
            assert stats.num_switches == 2
            assert stats.reorgs_completed == 2
            assert stats.movement_charged == pytest.approx(6.0)
            assert engine.stored().layout is third

    def test_abort_reorg_mid_session(self, tmp_path, bundle, layouts, queries):
        """abort_reorg cancels cleanly and the same target can be retried."""
        first, second = layouts
        config = EngineConfig(
            store_root=tmp_path / "s",
            alpha=6.0,
            async_reorg=True,
            step_partitions=1,
            cleanup_on_close=True,
        )
        with LayoutEngine(config).open(bundle.table, first) as engine:
            assert engine.abort_reorg() == 0.0  # idle: no-op
            engine.reorganize(second)
            engine.step()
            engine.step()
            refund = engine.abort_reorg()
            assert refund > 0.0
            assert not engine.reorg_active
            # decision level rolled back to the epoch still on disk
            assert engine.current_layout is first
            assert engine.stored().layout is first
            assert not list((tmp_path / "s").rglob("*.staging"))
            assert engine.stats().movement_charged == 0.0
            engine.query(queries[0])  # serving still works on the old epoch
            # re-stating the aborted target must switch again, not no-op
            engine.reorganize(second)
            engine.run_until_idle()
            assert engine.stored().layout is second
            assert engine.stats().movement_charged == pytest.approx(6.0)

    def test_close_aborts_inflight_pipeline(self, tmp_path, bundle, layouts):
        first, second = layouts
        log = EventLog()
        config = EngineConfig(
            store_root=tmp_path / "s",
            async_reorg=True,
            step_partitions=1,
            cleanup_on_close=True,
        )
        engine = LayoutEngine(config, events=log).open(bundle.table, first)
        engine.reorganize(second)
        assert engine.reorg_active
        engine.close()
        assert "reorg_aborted" in log.names()
        assert not list((tmp_path / "s").rglob("*.staging"))
        assert not list((tmp_path / "s").rglob("*.npz"))


class TestStreamingReorg:
    def _streaming_engine(self, tmp_path, bundle, **overrides):
        config = EngineConfig(
            store_root=tmp_path / "s",
            builder=RangeLayoutBuilder(bundle.default_sort_column),
            data_sample_fraction=0.5,
            num_partitions=4,
            cleanup_on_close=True,
            **overrides,
        )
        return LayoutEngine(config)

    def test_sync_consolidation(self, tmp_path, bundle, queries):
        rng = np.random.default_rng(3)
        target = RangeLayoutBuilder("l_quantity").build(bundle.table, [], 4, rng)
        with self._streaming_engine(tmp_path, bundle, alpha=5.0) as engine:
            for chunk in range(4):
                engine.ingest(bundle.table.sample(0.2, np.random.default_rng(chunk)))
            fragmented = engine.stored()
            engine.reorganize(target)
            assert engine.stored().layout is target
            assert len(engine.stored().partitions) < len(fragmented.partitions)
            assert engine.stats().movement_charged == 5.0
            assert engine.query(queries[0]).total_rows == engine.stored().total_rows

    def test_pipelined_consolidation_serves_during_move(
        self, tmp_path, bundle, queries
    ):
        rng = np.random.default_rng(3)
        target = RangeLayoutBuilder("l_quantity").build(bundle.table, [], 4, rng)
        with self._streaming_engine(
            tmp_path, bundle, alpha=5.0, async_reorg=True, step_partitions=1
        ) as engine:
            for chunk in range(4):
                engine.ingest(bundle.table.sample(0.2, np.random.default_rng(chunk)))
            total_rows = engine.stored().total_rows
            engine.reorganize(target)
            assert engine.reorg_active
            # the stream never pauses: a mid-flight batch takes the
            # dual-epoch sidecar and is queryable immediately
            mid_flight = bundle.table.sample(0.1, rng)
            assert engine.ingest(mid_flight) > 0
            total_rows += mid_flight.num_rows
            served = engine.query(queries[0])
            assert served.total_rows == total_rows
            engine.run_until_idle()
            assert engine.stored().layout is target
            assert engine.stored().total_rows == total_rows  # nothing dropped
            assert engine.stats().movement_charged == pytest.approx(5.0)
            # ingestion continues under the new layout
            assert engine.ingest(bundle.table.sample(0.1, rng)) > 0

    def test_ingest_during_reorg_opt_out_restores_guard(
        self, tmp_path, bundle, queries
    ):
        rng = np.random.default_rng(3)
        target = RangeLayoutBuilder("l_quantity").build(bundle.table, [], 4, rng)
        with self._streaming_engine(
            tmp_path,
            bundle,
            alpha=5.0,
            async_reorg=True,
            step_partitions=1,
            ingest_during_reorg=False,
        ) as engine:
            for chunk in range(3):
                engine.ingest(bundle.table.sample(0.2, np.random.default_rng(chunk)))
            engine.reorganize(target)
            assert engine.reorg_active
            with pytest.raises(RuntimeError, match="consolidation"):
                engine.ingest(bundle.table.sample(0.1, rng))
            engine.run_until_idle()
            assert engine.ingest(bundle.table.sample(0.1, rng)) > 0

    def test_mover_threads_commit_identical_partition_bytes(
        self, tmp_path, bundle, queries
    ):
        # mover_threads=4 must be invisible in the committed state: same
        # files, same bytes, same query answers as the serial engine.
        rng = np.random.default_rng(3)
        target = RangeLayoutBuilder("l_quantity").build(bundle.table, [], 4, rng)
        stored = {}
        for threads in (1, 4):
            with self._streaming_engine(
                tmp_path / f"threads-{threads}",
                bundle,
                alpha=5.0,
                async_reorg=True,
                step_partitions=2,
                mover_threads=threads,
            ) as engine:
                for chunk in range(4):
                    engine.ingest(
                        bundle.table.sample(0.2, np.random.default_rng(chunk))
                    )
                engine.reorganize(target)
                engine.run_until_idle()
                snapshot = engine.stored()
                stored[threads] = [
                    (p.partition_id, p.epoch, p.path.read_bytes())
                    for p in snapshot.partitions
                ]
                assert snapshot.layout is target
        assert stored[1] == stored[4]


class TestPolicies:
    def test_never_reorganize_stays_put(self, tmp_path, bundle, layouts, queries):
        first, _ = layouts
        config = EngineConfig(store_root=tmp_path / "s", cleanup_on_close=True)
        policy = NeverReorganize()
        with LayoutEngine(config, policy=policy).open(bundle.table, first) as engine:
            for query in queries[:8]:
                engine.query(query)
            assert engine.stats().num_switches == 0
            assert engine.current_layout is first

    def test_greedy_switches_to_cheaper_candidate(
        self, tmp_path, bundle, layouts, queries
    ):
        first, second = layouts
        # first partitions on the date column; the l_quantity range queries
        # prune far better on second, so greedy must switch immediately.
        config = EngineConfig(store_root=tmp_path / "s", cleanup_on_close=True)
        policy = GreedyPolicy([second])
        with LayoutEngine(config, policy=policy).open(bundle.table, first) as engine:
            for query in queries[:4]:
                engine.query(query)
            assert engine.stats().num_switches == 1
            assert engine.current_layout is second

    def test_oreo_policy_runs_through_engine(self, tmp_path, bundle, queries):
        rng = np.random.default_rng(11)
        initial = RangeLayoutBuilder(bundle.default_sort_column).build(
            bundle.table, [], 4, rng
        )
        oreo = OREO(
            bundle.table,
            QdTreeBuilder(),
            initial,
            OreoConfig(
                alpha=2.0,
                window_size=6,
                generation_interval=6,
                num_partitions=4,
                data_sample_fraction=0.2,
            ),
            rng,
        )
        policy = OreoPolicy(oreo)
        config = EngineConfig(
            store_root=tmp_path / "s", alpha=2.0, cleanup_on_close=True
        )
        with LayoutEngine(config, policy=policy).open(bundle.table, initial) as engine:
            for query in queries:
                engine.query(query)
            stats = engine.stats()
            # the policy's logical ledger and the engine's physical ledger
            # agree on the movement total
            assert stats.movement_charged == pytest.approx(
                policy.ledger.total_reorg_cost
            )
            assert policy.ledger.num_switches == stats.num_switches
            assert engine.current_layout.layout_id == policy.current_layout.layout_id

    def test_two_policies_through_one_engine_instance(
        self, tmp_path, bundle, layouts, queries
    ):
        """OREO-backed and never-reorganize run through the same engine."""
        first, _ = layouts
        rng = np.random.default_rng(13)
        oreo = OREO(
            bundle.table,
            QdTreeBuilder(),
            first,
            OreoConfig(
                alpha=2.0,
                window_size=6,
                generation_interval=6,
                num_partitions=4,
                data_sample_fraction=0.2,
            ),
            rng,
        )
        config = EngineConfig(
            store_root=tmp_path / "s", alpha=2.0, cleanup_on_close=True
        )
        engine = LayoutEngine(config, policy=NeverReorganize())
        with engine.open(bundle.table, first):
            for query in queries[:6]:
                engine.query(query)
            assert engine.stats().num_switches == 0
            engine.policy = OreoPolicy(oreo)  # drop-in swap, engine unchanged
            for query in queries:
                engine.query(query)
            assert isinstance(engine.policy, ReorgPolicy)
            assert engine.stats().queries_served == 6 + len(queries)

    def test_schedule_policy_replays_history(self, tmp_path, bundle, layouts, queries):
        first, second = layouts
        history = [first.layout_id] * 3 + [second.layout_id] * 3
        policy = SchedulePolicy(
            history, {first.layout_id: first, second.layout_id: second}
        )
        config = EngineConfig(store_root=tmp_path / "s", cleanup_on_close=True)
        with LayoutEngine(config, policy=policy).open(bundle.table, first) as engine:
            for query in queries[:6]:
                engine.query(query)
            assert engine.stats().num_switches == 1
            assert engine.current_layout is second
            with pytest.raises(RuntimeError, match="exhausted"):
                engine.query(queries[6])

    def test_schedule_policy_rejects_unknown_layouts(self, layouts):
        first, _ = layouts
        with pytest.raises(ValueError, match="unknown layouts"):
            SchedulePolicy(["nope"], {first.layout_id: first})

    def test_custom_policy_duck_types(self, tmp_path, bundle, layouts, queries):
        first, second = layouts

        class SwitchOnce:
            def __init__(self):
                self.seen = 0

            def observe(self, query, costs):
                self.seen += 1
                return Decision(target=second if self.seen == 2 else None)

        config = EngineConfig(store_root=tmp_path / "s", cleanup_on_close=True)
        policy = SwitchOnce()
        assert isinstance(policy, ReorgPolicy)  # structural protocol
        with LayoutEngine(config, policy=policy).open(bundle.table, first) as engine:
            for query in queries[:4]:
                engine.query(query)
            assert engine.stats().num_switches == 1
            assert engine.current_layout is second


class TestStreamingEdgeCases:
    def test_reorganize_before_any_data_rejected(self, tmp_path, layouts):
        first, second = layouts
        # open(initial_layout=...) sets the layout but holds no data yet
        engine = LayoutEngine(EngineConfig(store_root=tmp_path / "s")).open(
            initial_layout=first
        )
        with pytest.raises(RuntimeError, match="no data"):
            engine.reorganize(second)
        engine.close()

    def test_policy_switch_on_dataless_engine_raises(self, tmp_path, layouts, queries):
        """A policy-requested switch on a data-less engine raises the same
        clean error as explicit reorganize() — never a silent drop."""
        first, second = layouts

        class AlwaysSwitch:
            def observe(self, query, costs):
                return Decision(target=second)

        engine = LayoutEngine(
            EngineConfig(store_root=tmp_path / "s"), policy=AlwaysSwitch()
        ).open(initial_layout=first)
        with pytest.raises(RuntimeError, match="no data"):
            engine.observe(queries[0])
        engine.close()

    def test_wants_costs_policy_with_unpriceable_candidates(
        self, tmp_path, bundle, layouts, queries
    ):
        """Streaming engine + greedy: un-registered candidates are skipped,
        not crashed on (no table to derive their metadata from)."""
        _, second = layouts
        config = EngineConfig(
            store_root=tmp_path / "s",
            builder=RangeLayoutBuilder(bundle.default_sort_column),
            data_sample_fraction=0.5,
            num_partitions=4,
            cleanup_on_close=True,
        )
        policy = GreedyPolicy([second])
        with LayoutEngine(config, policy=policy) as engine:
            engine.ingest(bundle.table.sample(0.3, np.random.default_rng(0)))
            engine.query(queries[0])  # candidate unpriceable -> stay put
            assert engine.stats().num_switches == 0
            # registering the candidate's physical snapshot makes it priceable
            engine.evaluator.register_metadata(
                second.layout_id, second.metadata_for(bundle.table)
            )
            for query in queries[:4]:
                engine.query(query)
            assert engine.stats().num_switches == 1
            assert engine.current_layout is second

    def test_same_id_reorganize_consolidates_streaming_store(
        self, tmp_path, bundle, queries
    ):
        """reorganize(current_layout) on a streaming engine defragments."""
        with self._streaming_engine_for_consolidation(tmp_path, bundle) as engine:
            for seed in range(4):
                engine.ingest(bundle.table.sample(0.2, np.random.default_rng(seed)))
            fragmented = len(engine.stored().partitions)
            before = engine.query(queries[0]).rows_matched
            engine.reorganize(engine.current_layout)  # same id: consolidation
            assert len(engine.stored().partitions) < fragmented
            assert engine.stored().layout is engine.current_layout
            assert engine.query(queries[0]).rows_matched == before
            assert engine.stats().num_switches == 1
            assert engine.stats().movement_charged == 5.0

    def _streaming_engine_for_consolidation(self, tmp_path, bundle):
        return LayoutEngine(
            EngineConfig(
                store_root=tmp_path / "s",
                builder=RangeLayoutBuilder(bundle.default_sort_column),
                data_sample_fraction=0.5,
                num_partitions=4,
                alpha=5.0,
                cleanup_on_close=True,
            )
        )

    def test_empty_first_batch_is_a_noop(self, tmp_path, bundle):
        """An empty first batch must not pin the schema or derive a layout."""
        config = EngineConfig(
            store_root=tmp_path / "s",
            builder=RangeLayoutBuilder(bundle.default_sort_column),
            data_sample_fraction=0.5,
            cleanup_on_close=True,
        )
        from repro.storage import Table

        with LayoutEngine(config) as engine:
            empty = Table(
                bundle.table.schema,
                {
                    name: bundle.table[name][:0]
                    for name in bundle.table.schema.names()
                },
            )
            assert empty.num_rows == 0
            assert engine.ingest(empty) == 0
            assert engine.stats().rows_ingested == 0
            # real data afterwards works normally
            assert engine.ingest(bundle.table.sample(0.3, np.random.default_rng(1))) > 0

    def test_fragmentation_delegate(self, tmp_path, bundle):
        config = EngineConfig(
            store_root=tmp_path / "s",
            builder=RangeLayoutBuilder(bundle.default_sort_column),
            data_sample_fraction=0.5,
            num_partitions=2,
            cleanup_on_close=True,
        )
        with LayoutEngine(config) as engine:
            assert engine.fragmentation(1_000) == 1.0  # nothing ingested yet
            for seed in range(3):
                engine.ingest(bundle.table.sample(0.2, np.random.default_rng(seed)))
            frag = engine.fragmentation(bundle.table.num_rows)
            assert frag == len(engine.stored().partitions)  # 1 ideal partition
            assert frag > 1.0


class TestGreedyPolicyUnit:
    def test_negative_margin_rejected(self):
        with pytest.raises(ValueError):
            GreedyPolicy([], margin=-1.0)

    def test_no_costs_stays(self):
        policy = GreedyPolicy([])
        assert policy.observe(None, {}).target is None

    def test_margin_suppresses_marginal_switch(self, tmp_path, bundle, layouts, queries):
        first, second = layouts
        config = EngineConfig(store_root=tmp_path / "s", cleanup_on_close=True)
        policy = GreedyPolicy([second], margin=1.0)  # margin ≥ any c(s,q) gap
        with LayoutEngine(config, policy=policy).open(bundle.table, first) as engine:
            for query in queries[:4]:
                engine.query(query)
            assert engine.stats().num_switches == 0

    def test_policy_swap_attaches_cost_wiring(self, tmp_path, bundle, queries):
        """Swapping in a wants_costs policy wires the evaluator into the
        ingest path, so appends revalidate instead of wiping caches."""
        config = EngineConfig(
            store_root=tmp_path / "s",
            builder=RangeLayoutBuilder(bundle.default_sort_column),
            data_sample_fraction=0.5,
            num_partitions=4,
            cleanup_on_close=True,
        )
        with LayoutEngine(config, policy=NeverReorganize()) as engine:
            engine.ingest(bundle.table.sample(0.2, np.random.default_rng(0)))
            engine.policy = GreedyPolicy([], margin=0.5)
            # wiring attached and seeded with the current snapshot
            assert engine._incremental.evaluator is engine.evaluator
            assert engine.evaluator.has_metadata(engine.current_layout.layout_id)
            engine.query(queries[0])  # prices + caches against the snapshot
            cached_before = engine.evaluator.cache_sizes()[1]
            assert cached_before > 0
            engine.ingest(bundle.table.sample(0.2, np.random.default_rng(1)))
            # the append revalidated (migrated) the cached price, not wiped it
            assert engine.evaluator.cache_sizes()[1] == cached_before

    def test_policy_swapped_onto_live_engine_is_bound(
        self, tmp_path, bundle, layouts, queries
    ):
        """Assigning engine.policy after open() must bind() it: an unbound
        greedy policy cannot see the current layout, which would skip its
        margin guard and switch when it must not."""
        first, second = layouts
        config = EngineConfig(store_root=tmp_path / "s", cleanup_on_close=True)
        with LayoutEngine(config).open(bundle.table, first) as engine:
            engine.policy = GreedyPolicy([second], margin=1.0)
            for query in queries[:4]:
                engine.query(query)
            assert engine.stats().num_switches == 0  # margin still honoured
            assert engine.current_layout is first
