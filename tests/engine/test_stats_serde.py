"""EngineStats JSON round-trip: every dataclass field must survive."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.engine import EngineStats


def _populated() -> EngineStats:
    """Stats with a distinct non-default value in every field."""
    values = {}
    for index, field in enumerate(dataclasses.fields(EngineStats)):
        float_field = field.type in ("float", float)
        values[field.name] = float(index) + 0.5 if float_field else index + 1
    return EngineStats(**values)


def test_round_trip_preserves_every_field():
    stats = _populated()
    restored = EngineStats.from_dict(stats.to_dict())
    for field in dataclasses.fields(EngineStats):
        assert getattr(restored, field.name) == getattr(stats, field.name), field.name
    assert restored == stats


def test_to_dict_covers_every_dataclass_field():
    payload = _populated().to_dict()
    assert set(payload) == {f.name for f in dataclasses.fields(EngineStats)}


def test_round_trip_survives_json_wire_format():
    stats = _populated()
    wire = json.dumps(stats.to_dict())
    assert EngineStats.from_dict(json.loads(wire)) == stats


def test_from_dict_rejects_missing_fields():
    payload = _populated().to_dict()
    payload.pop("rows_ingested")
    with pytest.raises(ValueError, match="missing fields.*rows_ingested"):
        EngineStats.from_dict(payload)


def test_from_dict_rejects_unknown_fields():
    payload = _populated().to_dict()
    payload["bogus_counter"] = 1
    with pytest.raises(ValueError, match="unknown fields.*bogus_counter"):
        EngineStats.from_dict(payload)


def test_live_engine_stats_round_trip(tmp_path, simple_table):
    from repro.engine import EngineConfig, LayoutEngine
    from repro.layouts.range_layout import RangeLayoutBuilder

    config = EngineConfig(
        store_root=tmp_path / "store",
        builder=RangeLayoutBuilder("x"),
        num_partitions=4,
    )
    with LayoutEngine(config) as engine:
        engine.ingest(simple_table)
        stats = engine.stats()
        assert EngineStats.from_dict(stats.to_dict()) == stats
