"""Differential proof: engine-driven replay ≡ the pre-facade loop, bit for bit.

``replay_physical`` is now a thin driver over ``LayoutEngine`` +
``SchedulePolicy``; the pre-facade hand-wired loop is kept verbatim as
``_replay_physical_direct``.  These tests drive both over the same
logical schedules — hypothesis-generated switch patterns, strides and
step budgets, in both synchronous and pipelined modes — and assert:

* identical deterministic counters (switches, sample sizes, movement
  charged — the ledger totals);
* identical final metadata *and partition file bytes*: every
  ``PartitionStore.delete_layout`` call is intercepted to snapshot the
  directory before deletion, so the comparison covers the exact bytes
  each path left on disk at the end of the run (and, in sync mode, each
  retired layout along the way).
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RunLedger
from repro.experiments.harness import MethodResult
from repro.experiments.physical import _replay_physical_direct, replay_physical
from repro.layouts import RangeLayoutBuilder
from repro.queries import Query, QueryStream, between
from repro.storage import PartitionStore
from repro.workloads import tpch


@pytest.fixture(scope="module")
def bundle():
    return tpch.load(1_500, np.random.default_rng(0))


@pytest.fixture(scope="module")
def layout_pool(bundle):
    rng = np.random.default_rng(1)
    return [
        RangeLayoutBuilder("l_shipdate").build(bundle.table, [], 4, rng),
        RangeLayoutBuilder("l_quantity").build(bundle.table, [], 3, rng),
        RangeLayoutBuilder("l_extendedprice").build(bundle.table, [], 5, rng),
    ]


@pytest.fixture(scope="module")
def query_pool(bundle):
    rng = np.random.default_rng(2)
    values = bundle.table["l_quantity"]
    lo, hi = float(np.min(values)), float(np.max(values))
    span = (hi - lo) / 10.0
    return [
        Query(predicate=between("l_quantity", float(s), float(s) + span))
        for s in rng.uniform(lo, hi - span, size=16)
    ]


def build_schedule(layout_pool, layout_choices, alpha):
    """A MethodResult whose history follows ``layout_choices`` per query."""
    ledger = RunLedger()
    previous = None
    for choice in layout_choices:
        layout_id = layout_pool[choice].layout_id
        switched = previous is not None and layout_id != previous
        ledger.record(0.1, alpha if switched and alpha else 0.0, layout_id, switched)
        previous = layout_id
    return MethodResult(
        method="manual",
        summary=ledger.summary(),
        ledger=ledger,
        layouts={layout.layout_id: layout for layout in layout_pool},
    )


@contextmanager
def capture_deletes():
    """Intercept delete_layout: snapshot (id, metadata, file bytes) first."""
    captured = []
    original = PartitionStore.delete_layout

    def wrapper(self, stored):
        layout_dir = self.root / stored.layout.layout_id
        files = {}
        if layout_dir.exists():
            files = {
                path.name: path.read_bytes()
                for path in sorted(layout_dir.glob("*.npz"))
            }
        captured.append((stored.layout.layout_id, stored.metadata, files))
        return original(self, stored)

    PartitionStore.delete_layout = wrapper
    try:
        yield captured
    finally:
        PartitionStore.delete_layout = original


def assert_replays_identical(
    bundle, layout_pool, query_pool, tmp_path, *,
    layout_choices, query_choices, sample_stride, async_reorg,
    step_partitions, alpha,
):
    """Run both replay paths on one schedule; assert bit-for-bit equality."""
    stream = QueryStream(queries=tuple(query_pool[i] for i in query_choices))
    result = build_schedule(layout_pool, layout_choices, alpha)
    with capture_deletes() as engine_deletes:
        engine_run = replay_physical(
            bundle.table, stream, result, tmp_path / "engine",
            sample_stride=sample_stride, async_reorg=async_reorg,
            step_partitions=step_partitions, alpha=alpha,
        )
    with capture_deletes() as direct_deletes:
        direct_run = _replay_physical_direct(
            bundle.table, stream, result, tmp_path / "direct",
            sample_stride=sample_stride, async_reorg=async_reorg,
            step_partitions=step_partitions, alpha=alpha,
        )

    # --- deterministic counters & ledger totals -------------------------
    assert engine_run.num_switches == direct_run.num_switches
    assert engine_run.queries_timed == direct_run.queries_timed
    assert engine_run.queries_total == direct_run.queries_total
    assert engine_run.movement_charged == direct_run.movement_charged
    if alpha is not None:
        assert engine_run.movement_charged == pytest.approx(
            result.summary.total_reorg_cost
        )

    # --- metadata + partition bytes at every deletion point -------------
    assert len(engine_deletes) == len(direct_deletes)
    for (eid, emeta, efiles), (did, dmeta, dfiles) in zip(
        engine_deletes, direct_deletes, strict=True
    ):
        assert eid == did
        assert emeta == dmeta
        assert sorted(efiles) == sorted(dfiles)
        for name in efiles:
            assert efiles[name] == dfiles[name], f"{eid}/{name} bytes differ"


# Positions where the schedule may switch to a different layout, as
# (fraction of stream, layout index) pairs; hypothesis shrinks nicely on it.
switch_plan = st.lists(
    st.tuples(st.floats(0.01, 0.99), st.integers(0, 2)),
    min_size=0,
    max_size=3,
)


@settings(max_examples=12)
@given(
    num_queries=st.integers(8, 24),
    plan=switch_plan,
    query_seed=st.integers(0, 2**16),
    sample_stride=st.sampled_from([1, 3, 7]),
    async_reorg=st.booleans(),
    step_partitions=st.sampled_from([1, 2, 5]),
    alpha=st.sampled_from([None, 5.0]),
)
def test_engine_replay_equals_direct(
    bundle, layout_pool, query_pool, tmp_path_factory,
    num_queries, plan, query_seed, sample_stride, async_reorg,
    step_partitions, alpha,
):
    choices = [0] * num_queries
    current = 0
    for fraction, layout_index in sorted(plan):
        position = int(fraction * num_queries)
        if layout_index != current and 0 < position < num_queries:
            choices[position:] = [layout_index] * (num_queries - position)
            current = layout_index
    rng = np.random.default_rng(query_seed)
    query_choices = rng.integers(0, len(query_pool), size=num_queries).tolist()
    assert_replays_identical(
        bundle, layout_pool, query_pool,
        tmp_path_factory.mktemp("diff"),
        layout_choices=choices, query_choices=query_choices,
        sample_stride=sample_stride, async_reorg=async_reorg,
        step_partitions=step_partitions, alpha=alpha,
    )


@pytest.mark.parametrize("async_reorg", [False, True])
def test_multi_switch_schedule(bundle, layout_pool, query_pool, tmp_path, async_reorg):
    """Deterministic anchor: three switches, both modes, stride 2."""
    choices = [0] * 6 + [1] * 6 + [2] * 6 + [0] * 6
    assert_replays_identical(
        bundle, layout_pool, query_pool, tmp_path,
        layout_choices=choices, query_choices=list(range(16)) + [0] * 8,
        sample_stride=2, async_reorg=async_reorg, step_partitions=2, alpha=5.0,
    )


def test_switch_at_stream_end_drains_pipeline(
    bundle, layout_pool, query_pool, tmp_path
):
    """The stream ends with the move in flight: both paths must drain it."""
    choices = [0] * 14 + [1] * 2  # pipeline cannot finish in 2 ticks
    assert_replays_identical(
        bundle, layout_pool, query_pool, tmp_path,
        layout_choices=choices, query_choices=[i % 16 for i in range(16)],
        sample_stride=1, async_reorg=True, step_partitions=1, alpha=5.0,
    )


def test_back_to_back_switches_serialize(bundle, layout_pool, query_pool, tmp_path):
    """A switch arriving mid-pipeline drains the in-flight move first."""
    choices = [0] * 5 + [1] * 2 + [2] * 9  # second switch lands mid-move
    assert_replays_identical(
        bundle, layout_pool, query_pool, tmp_path,
        layout_choices=choices, query_choices=[i % 16 for i in range(16)],
        sample_stride=1, async_reorg=True, step_partitions=1, alpha=5.0,
    )
