"""Sharded-vs-single differential suite: the composition correctness anchor.

A :class:`ShardedEngine` must be observationally equal to one
:class:`LayoutEngine` over the unsharded stream: every query's matched
rows are identical (hash routing places each row on exactly one shard),
and the merged movement ledger charges exactly what the single engine
charges (per-shard α = α/N, summing back across shards).  The
deterministic tests pin a full 4-shard materialized run and a streaming
run against their single-engine references; the hypothesis machine
interleaves ingest / query / step / reorganize across shards and checks
the equalities at every step.
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.engine import EngineConfig, LayoutEngine, ShardedEngine
from repro.layouts import RangeLayoutBuilder, RoundRobinLayout
from repro.queries import Query, between
from repro.storage import ColumnSpec, Schema, Table
from repro.workloads import tpch

SHARD_KEY = "l_orderkey"
NUM_SHARDS = 4
ALPHA = 80.0


@pytest.fixture(scope="module")
def bundle():
    return tpch.load(4_000, np.random.default_rng(0))


@pytest.fixture(scope="module")
def layouts(bundle):
    rng = np.random.default_rng(1)
    first = RangeLayoutBuilder(bundle.default_sort_column).build(
        bundle.table, [], 6, rng
    )
    second = RangeLayoutBuilder("l_quantity").build(bundle.table, [], 6, rng)
    return first, second


@pytest.fixture(scope="module")
def stream(bundle):
    return bundle.workload(30, 3, np.random.default_rng(2))


def test_materialized_4_shard_run_matches_single_engine(
    tmp_path, bundle, layouts, stream
):
    first, second = layouts
    single_config = EngineConfig(
        store_root=tmp_path / "single", alpha=ALPHA, cleanup_on_close=True
    )
    sharded_config = EngineConfig(
        store_root=tmp_path / "sharded", alpha=ALPHA, cleanup_on_close=True
    )
    with LayoutEngine(single_config).open(bundle.table, first) as single:
        single_before = [r.rows_matched for r in single.query_batch(stream)]
        single.reorganize(second)
        single_after = [r.rows_matched for r in single.query_batch(stream)]
        single_stats = single.stats()
    with ShardedEngine(sharded_config, SHARD_KEY, NUM_SHARDS).open(
        bundle.table, first
    ) as sharded:
        # the stream also covers single queries, not just batches
        assert all(e.holds_data for e in sharded.shards)
        merged_before = [r.rows_matched for r in sharded.query_batch(stream)]
        assert [sharded.query(q).rows_matched for q in stream[:5]] == single_before[:5]
        sharded.reorganize(second)
        merged_after = [r.rows_matched for r in sharded.query_batch(stream)]
        merged_stats = sharded.stats()
        per_shard_rows = [
            e.stored().total_rows for e in sharded.shards if e.holds_data
        ]
    # per-row result equality, before and after the reorganization
    assert merged_before == single_before
    assert merged_after == single_after
    # every result aggregates the whole logical table
    assert sum(per_shard_rows) == bundle.table.num_rows
    # movement-ledger equality: 4 shards × α/4 == one engine × α
    assert merged_stats.movement_charged == pytest.approx(
        single_stats.movement_charged
    )
    assert merged_stats.movement_charged == pytest.approx(ALPHA)
    # same logical work: both switched every row's layout exactly once
    assert single_stats.reorgs_completed == 1
    assert merged_stats.reorgs_completed == NUM_SHARDS


def test_streaming_run_matches_single_engine(tmp_path, bundle, layouts, stream):
    first, second = layouts
    builder = RangeLayoutBuilder(bundle.default_sort_column)
    batches = [
        bundle.table.sample(0.25, np.random.default_rng(seed)) for seed in range(3)
    ]
    queries = stream[:10]

    def run(engine):
        matched = []
        for batch in batches:
            engine.ingest(batch)
        matched.extend(r.rows_matched for r in engine.query_batch(queries))
        engine.reorganize(second)
        engine.run_until_idle()
        matched.extend(r.rows_matched for r in engine.query_batch(queries))
        return matched, engine.stats()

    single_config = EngineConfig(
        store_root=tmp_path / "single",
        builder=builder,
        data_sample_fraction=0.5,
        num_partitions=4,
        alpha=ALPHA,
        async_reorg=True,
        step_partitions=2,
        cleanup_on_close=True,
    )
    sharded_config = single_config.with_overrides(store_root=tmp_path / "sharded")
    with LayoutEngine(single_config) as single:
        single_matched, single_stats = run(single)
    with ShardedEngine(sharded_config, SHARD_KEY, NUM_SHARDS) as sharded:
        sharded_matched, sharded_stats = run(sharded)
        data_shards = sum(e.holds_data for e in sharded.shards)
    assert sharded_matched == single_matched
    assert sharded_stats.rows_ingested == single_stats.rows_ingested
    assert single_stats.movement_charged == pytest.approx(ALPHA)
    # only the shards holding data consolidate; each charges its α/N split
    assert sharded_stats.movement_charged == pytest.approx(
        ALPHA * data_shards / NUM_SHARDS
    )


class ShardedVsSingleMachine(RuleBasedStateMachine):
    """Random interleavings of ingest/query/step/reorganize across shards.

    A 3-shard router and a single mirror engine consume identical
    streams; at every step the machine checks the observational
    equalities that make sharding transparent:

    * every query matches the same rows on both sides, mid-flight moves
      included (per-shard epoch visibility);
    * ingested-row totals agree;
    * each engine's movement ledger equals ``reorgs_completed × its α``
      (the per-shard α/N split composes, aborts refund to zero) — at
      *all* times, because pipelined charges settle only at commit.
    """

    ALPHA = 3.0
    NUM_SHARDS = 3

    def __init__(self):
        super().__init__()
        self._tmp = Path(tempfile.mkdtemp(prefix="sharded-stateful-"))
        self.schema = Schema(
            columns=(ColumnSpec("x", "numeric"), ColumnSpec("y", "numeric"))
        )
        base = EngineConfig(
            store_root=self._tmp / "sharded",
            builder=RangeLayoutBuilder("x"),
            data_sample_fraction=0.5,
            num_partitions=3,
            alpha=self.ALPHA,
            async_reorg=True,
            step_partitions=2,
        )
        self.sharded = ShardedEngine(base, "x", self.NUM_SHARDS).open()
        self.mirror = LayoutEngine(
            base.with_overrides(store_root=self._tmp / "mirror")
        ).open()
        sample = self._make_batch(0, 200)
        rng = np.random.default_rng(9)
        self.targets = [
            RangeLayoutBuilder("x").build(sample, [], 3, rng),
            RangeLayoutBuilder("y").build(sample, [], 4, rng),
            RoundRobinLayout(2),
        ]
        self.queries = [
            Query(predicate=between("x", 10.0, 45.0)),
            Query(predicate=between("x", 40.0, 95.0)),
            Query(predicate=between("y", 0.2, 0.7)),
        ]

    def teardown(self):
        self.sharded.close()
        self.mirror.close()
        shutil.rmtree(self._tmp, ignore_errors=True)

    def _make_batch(self, seed: int, rows: int) -> Table:
        generator = np.random.default_rng(seed)
        return Table(
            self.schema,
            {
                "x": generator.uniform(0.0, 100.0, size=rows),
                "y": generator.uniform(0.0, 1.0, size=rows),
            },
        )

    @rule(seed=st.integers(0, 10**6), rows=st.integers(20, 60))
    def ingest(self, seed, rows):
        batch = self._make_batch(seed, rows)
        self.sharded.ingest(batch)
        self.mirror.ingest(batch)

    @precondition(lambda self: self.mirror.holds_data)
    @rule(index=st.integers(0, 2))
    def query(self, index):
        query = self.queries[index]
        merged = self.sharded.query(query)
        single = self.mirror.query(query)
        assert merged.rows_matched == single.rows_matched
        assert merged.total_rows == single.total_rows

    @rule()
    def step(self):
        self.sharded.step()
        self.mirror.step()

    @precondition(lambda self: self.mirror.holds_data)
    @rule(index=st.integers(0, 2))
    def reorganize(self, index):
        target = self.targets[index]
        self.sharded.reorganize(target)
        self.mirror.reorganize(target)

    @rule()
    def drain(self):
        self.sharded.run_until_idle()
        self.mirror.run_until_idle()

    @rule()
    def abort(self):
        self.sharded.abort_reorg()
        self.mirror.abort_reorg()

    @invariant()
    def totals_and_ledgers_agree(self):
        assert self.sharded.stats().rows_ingested == self.mirror.stats().rows_ingested
        mirror_stats = self.mirror.stats()
        assert mirror_stats.movement_charged == pytest.approx(
            mirror_stats.reorgs_completed * self.ALPHA
        )
        shard_alpha = self.ALPHA / self.NUM_SHARDS
        for shard in self.sharded.shards:
            stats = shard.stats()
            assert stats.movement_charged == pytest.approx(
                stats.reorgs_completed * shard_alpha
            )


ShardedVsSingleMachine.TestCase.settings = settings(
    max_examples=10, stateful_step_count=25, deadline=None
)
TestShardedVsSingleStateful = ShardedVsSingleMachine.TestCase
