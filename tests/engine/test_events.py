"""Event lifecycle tests: firing order, payloads, multi-observer fanout."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import (
    EngineConfig,
    EngineEvents,
    EventLog,
    LayoutEngine,
)
from repro.layouts import RangeLayoutBuilder
from repro.queries import Query, between
from repro.workloads import tpch


@pytest.fixture(scope="module")
def bundle():
    return tpch.load(3_000, np.random.default_rng(0))


@pytest.fixture(scope="module")
def layouts(bundle):
    rng = np.random.default_rng(1)
    first = RangeLayoutBuilder(bundle.default_sort_column).build(
        bundle.table, [], 4, rng
    )
    second = RangeLayoutBuilder("l_quantity").build(bundle.table, [], 4, rng)
    return first, second


@pytest.fixture(scope="module")
def query(bundle):
    values = bundle.table["l_quantity"]
    lo, hi = float(np.min(values)), float(np.max(values))
    return Query(predicate=between("l_quantity", lo, lo + (hi - lo) / 8.0))


def test_open_close_events(tmp_path, bundle, layouts):
    first, _ = layouts
    log = EventLog()
    config = EngineConfig(store_root=tmp_path / "s", cleanup_on_close=True)
    engine = LayoutEngine(config, events=log)
    engine.open(bundle.table, first)
    engine.close()
    assert log.names() == ["open", "close"]


def test_sync_reorg_event_order(tmp_path, bundle, layouts, query):
    first, second = layouts
    log = EventLog()
    config = EngineConfig(store_root=tmp_path / "s", alpha=4.0, cleanup_on_close=True)
    with LayoutEngine(config, events=log).open(bundle.table, first) as engine:
        engine.query(query)
        engine.reorganize(second)
        engine.query(query)
    assert log.names() == [
        "open",
        "query_served",
        "reorg_started",
        "movement_charged",
        "reorg_committed",
        "query_served",
        "close",
    ]
    started = dict(log.records)["reorg_started"]
    assert started == {
        "source_id": first.layout_id,
        "target_id": second.layout_id,
        "pipelined": False,
    }
    assert dict(log.records)["movement_charged"]["amount"] == 4.0


def test_pipelined_reorg_event_order(tmp_path, bundle, layouts, query):
    first, second = layouts
    log = EventLog()
    config = EngineConfig(
        store_root=tmp_path / "s",
        alpha=4.0,
        async_reorg=True,
        step_partitions=1,
        cleanup_on_close=True,
    )
    with LayoutEngine(config, events=log).open(bundle.table, first) as engine:
        engine.reorganize(second)
        while engine.reorg_active:
            engine.query(query)  # serve + one movement step per query
    names = log.names()
    # the reorg starts exactly once, commits exactly once, at the end
    assert names.count("reorg_started") == 1
    assert names.count("reorg_committed") == 1
    assert names.index("reorg_started") < names.index("reorg_committed")
    # movement steps interleave with served queries between start and commit
    steps = [name for name in names if name == "reorg_step"]
    assert len(steps) >= 3  # read/assign/write/commit at 1 file per step
    # per-query interleaving: a query_served is followed by a reorg_step
    first_serve = names.index("query_served")
    assert names[first_serve + 1] == "reorg_step"
    # installments sum to exactly alpha
    charges = [
        payload["amount"] for name, payload in log.records if name == "movement_charged"
    ]
    assert sum(charges) == pytest.approx(4.0)
    # step payloads carry the pipeline phases in order
    kinds = [
        payload["kind"] for name, payload in log.records if name == "reorg_step"
    ]
    assert kinds[0] == "read"
    assert kinds[-1] == "commit"
    assert dict(log.records)["reorg_committed"]["target_id"] == second.layout_id


def test_abort_refund_keeps_event_ledger_consistent(tmp_path, bundle, layouts):
    """Installments of an aborted move are refunded in the event stream,
    so summing movement_charged events always equals stats()."""
    first, second = layouts
    log = EventLog()
    config = EngineConfig(
        store_root=tmp_path / "s",
        alpha=4.0,
        async_reorg=True,
        step_partitions=1,
        cleanup_on_close=True,
    )
    engine = LayoutEngine(config, events=log).open(bundle.table, first)
    engine.reorganize(second)
    for _ in range(3):
        engine.step()  # emit a few installments, then abandon the move
    engine.close()
    charges = [
        payload["amount"] for name, payload in log.records if name == "movement_charged"
    ]
    assert len(charges) >= 4  # 3 installments + the compensating refund
    assert charges[-1] < 0.0
    assert sum(charges) == pytest.approx(engine.stats().movement_charged)
    assert engine.stats().movement_charged == 0.0
    names = log.names()
    assert names.index("movement_charged", names.index("reorg_started")) < names.index(
        "reorg_aborted"
    )


def test_ingest_events(tmp_path, bundle):
    log = EventLog()
    config = EngineConfig(
        store_root=tmp_path / "s",
        builder=RangeLayoutBuilder(bundle.default_sort_column),
        data_sample_fraction=0.5,
        num_partitions=2,
        cleanup_on_close=True,
    )
    with LayoutEngine(config, events=log) as engine:
        engine.ingest(bundle.table.sample(0.3, np.random.default_rng(0)))
        engine.ingest(bundle.table.sample(0.3, np.random.default_rng(1)))
    ingests = [payload for name, payload in log.records if name == "ingest"]
    assert len(ingests) == 2
    assert all(payload["rows"] > 0 for payload in ingests)
    assert all(payload["partitions_written"] > 0 for payload in ingests)
    # no consolidation ran: the sidecar hook never fired
    assert "ingest_during_reorg" not in log.names()


def test_ingest_during_reorg_fires_both_hooks(tmp_path, bundle, layouts):
    _, second = layouts
    log = EventLog()
    config = EngineConfig(
        store_root=tmp_path / "s",
        builder=RangeLayoutBuilder(bundle.default_sort_column),
        data_sample_fraction=0.5,
        num_partitions=4,
        async_reorg=True,
        step_partitions=1,
        cleanup_on_close=True,
    )
    with LayoutEngine(config, events=log) as engine:
        engine.ingest(bundle.table.sample(0.3, np.random.default_rng(0)))
        engine.ingest(bundle.table.sample(0.3, np.random.default_rng(1)))
        engine.reorganize(second)
        assert engine.reorg_active
        mid_flight = bundle.table.sample(0.2, np.random.default_rng(2))
        engine.ingest(mid_flight)
        engine.run_until_idle()
    sidecar = [
        payload for name, payload in log.records if name == "ingest_during_reorg"
    ]
    assert len(sidecar) == 1
    assert sidecar[0]["rows"] == mid_flight.num_rows
    assert sidecar[0]["partitions_written"] > 0
    assert sidecar[0]["target_id"] == second.layout_id
    # the plain ingest hook fired for every batch, sidecar ones included:
    # an observer summing rows over on_ingest alone stays correct
    ingests = [payload for name, payload in log.records if name == "ingest"]
    assert len(ingests) == 3
    assert sum(p["rows"] for p in ingests) == engine.stats().rows_ingested
    # the sidecar hook fired immediately after its batch's plain hook
    names = log.names()
    position = names.index("ingest_during_reorg")
    assert names[position - 1] == "ingest"


def test_multiple_observers_fan_out_in_order(tmp_path, bundle, layouts, query):
    first, _ = layouts
    calls: list[str] = []

    class Tagged(EngineEvents):
        def __init__(self, tag):
            self.tag = tag

        def on_query_served(self, query, result):
            calls.append(self.tag)

    config = EngineConfig(store_root=tmp_path / "s", cleanup_on_close=True)
    engine = LayoutEngine(config, events=[Tagged("a"), Tagged("b")])
    with engine.open(bundle.table, first):
        engine.query(query)
    assert calls == ["a", "b"]


def test_observer_sees_engine_on_open(tmp_path, bundle, layouts):
    first, _ = layouts
    seen = {}

    class Probe(EngineEvents):
        def on_open(self, engine):
            seen["open"] = engine.current_layout.layout_id

        def on_close(self, engine):
            seen["close"] = True

    config = EngineConfig(store_root=tmp_path / "s", cleanup_on_close=True)
    with LayoutEngine(config, events=Probe()).open(bundle.table, first):
        pass
    assert seen == {"open": first.layout_id, "close": True}


def test_event_log_records_concurrently_without_loss():
    """Regression: ``EventLog._record`` used to append to a plain list
    with no lock, so concurrent shard threads sharing one observer could
    interleave mid-append and drop records.  With the lock, every record
    from every thread lands exactly once."""
    import threading

    log = EventLog()
    threads_n, per_thread = 8, 200
    barrier = threading.Barrier(threads_n)

    def hammer(tag: int) -> None:
        barrier.wait()
        for i in range(per_thread):
            log.on_movement_charged(float(tag * per_thread + i))

    threads = [threading.Thread(target=hammer, args=(t,)) for t in range(threads_n)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(log.records) == threads_n * per_thread
    amounts = sorted(payload["amount"] for _, payload in log.records)
    assert amounts == [float(i) for i in range(threads_n * per_thread)]
    # per-thread subsequences stay in each thread's firing order
    for tag in range(threads_n):
        lo, hi = tag * per_thread, (tag + 1) * per_thread
        own = [
            payload["amount"]
            for _, payload in log.records
            if lo <= payload["amount"] < hi
        ]
        assert own == [float(i) for i in range(lo, hi)]


def test_default_hooks_are_noops(tmp_path, bundle, layouts, query):
    first, _ = layouts
    config = EngineConfig(store_root=tmp_path / "s", cleanup_on_close=True)
    # a bare EngineEvents must be attachable without overriding anything
    with LayoutEngine(config, events=EngineEvents()).open(bundle.table, first) as engine:
        engine.query(query)
        engine.reorganize(first)  # no-op
    # nothing raised; nothing to assert beyond survival
