"""EngineConfig validation unit tests."""

from __future__ import annotations

import pytest

from repro.engine import EngineConfig
from repro.layouts import RangeLayoutBuilder


def test_defaults_valid(tmp_path):
    config = EngineConfig(store_root=tmp_path)
    assert config.alpha is None
    assert config.async_reorg is False
    assert config.step_partitions == 16
    assert config.compress is True
    assert config.cleanup_on_close is False


def test_builder_accepted(tmp_path):
    config = EngineConfig(store_root=tmp_path, builder=RangeLayoutBuilder("x"))
    assert config.builder is not None


def test_alpha_zero_is_tracked_but_free(tmp_path):
    # replay schedules use alpha=0.0 for "track movement, charge nothing"
    assert EngineConfig(store_root=tmp_path, alpha=0.0).alpha == 0.0


@pytest.mark.parametrize(
    "overrides",
    [
        {"step_partitions": 0},
        {"step_partitions": -4},
        {"num_partitions": 0},
        {"data_sample_fraction": 0.0},
        {"data_sample_fraction": 1.5},
        {"data_sample_fraction": -0.1},
        {"alpha": -3.0},
        {"builder": object()},
    ],
)
def test_invalid_knobs_rejected(tmp_path, overrides):
    with pytest.raises(ValueError):
        EngineConfig(store_root=tmp_path, **overrides)


def test_with_overrides_revalidates(tmp_path):
    config = EngineConfig(store_root=tmp_path)
    bumped = config.with_overrides(step_partitions=4, alpha=12.0)
    assert bumped.step_partitions == 4
    assert bumped.alpha == 12.0
    assert config.step_partitions == 16  # original untouched (frozen)
    with pytest.raises(ValueError):
        config.with_overrides(step_partitions=0)
