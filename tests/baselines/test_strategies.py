"""Tests for the Static, Greedy and Regret baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    CandidateGenerator,
    GreedyStrategy,
    RegretStrategy,
    StaticStrategy,
    build_static_layout,
)
from repro.core import CostEvaluator
from repro.layouts import QdTreeBuilder, RangeLayoutBuilder, RoundRobinLayout
from repro.queries import between
from repro.workloads import generate_stream
from repro.workloads.templates import QueryTemplate


def drift_templates():
    def low(rng):
        start = float(rng.uniform(0, 30))
        return between("x", start, start + 3.0)

    def high(rng):
        start = float(rng.uniform(60, 95))
        return between("x", start, start + 3.0)

    return (QueryTemplate("low", low), QueryTemplate("high", high))


@pytest.fixture
def stream(rng):
    return generate_stream(drift_templates(), 300, 6, rng)


@pytest.fixture
def candidates(simple_table, rng):
    return CandidateGenerator(
        table=simple_table,
        builder=QdTreeBuilder(),
        window_size=25,
        generation_interval=25,
        num_partitions=8,
        data_sample_fraction=0.2,
        rng=rng,
    )


class TestCandidateGenerator:
    def test_interval_validation(self, simple_table, rng):
        with pytest.raises(ValueError):
            CandidateGenerator(simple_table, QdTreeBuilder(), 10, 0, 4, 0.1, rng)

    def test_candidate_every_interval(self, candidates, stream):
        produced = []
        for index, query in enumerate(stream):
            layout = candidates.observe(query)
            if layout is not None:
                produced.append(index)
        assert produced == [i for i in range(len(stream)) if (i + 1) % 25 == 0]

    def test_candidates_differ_across_regimes(self, candidates, stream):
        layouts = [candidates.observe(q) for q in stream]
        layouts = [l for l in layouts if l is not None]
        assert len({l.layout_id for l in layouts}) == len(layouts)


class TestStatic:
    def test_never_switches(self, simple_table, stream, rng):
        layout = build_static_layout(
            simple_table, QdTreeBuilder(), list(stream), 8, 0.2, rng
        )
        strategy = StaticStrategy(CostEvaluator(simple_table), layout)
        summary = strategy.run(stream)
        assert summary.num_switches == 0
        assert summary.total_reorg_cost == 0.0
        assert summary.num_queries == len(stream)

    def test_workload_aware_beats_oblivious(self, simple_table, stream, rng):
        evaluator = CostEvaluator(simple_table)
        tuned = build_static_layout(
            simple_table, QdTreeBuilder(), list(stream), 8, 0.2, rng
        )
        oblivious = RoundRobinLayout(8)
        tuned_cost = StaticStrategy(evaluator, tuned).run(stream).total_query_cost
        oblivious_cost = StaticStrategy(evaluator, oblivious).run(stream).total_query_cost
        assert tuned_cost < oblivious_cost


class TestGreedy:
    def test_switches_toward_better_layouts(self, simple_table, stream, candidates, rng):
        initial = RangeLayoutBuilder("y").build(simple_table, [], 8, rng)
        strategy = GreedyStrategy(CostEvaluator(simple_table), initial, candidates, alpha=10.0)
        summary = strategy.run(stream)
        assert summary.num_switches >= 1
        assert summary.total_reorg_cost == 10.0 * summary.num_switches

    def test_ignores_alpha_in_decisions(self, simple_table, stream, rng):
        """Same candidate stream => same switch count regardless of alpha."""
        switch_counts = []
        for alpha in (1.0, 1000.0):
            candidates = CandidateGenerator(
                simple_table, QdTreeBuilder(), 25, 25, 8, 0.2,
                np.random.default_rng(0),
            )
            initial = RangeLayoutBuilder("y").build(
                simple_table, [], 8, np.random.default_rng(1)
            )
            strategy = GreedyStrategy(
                CostEvaluator(simple_table), initial, candidates, alpha=alpha
            )
            switch_counts.append(strategy.run(stream).num_switches)
        assert switch_counts[0] == switch_counts[1]


class TestRegret:
    def make(self, simple_table, rng, alpha=10.0, **kwargs):
        candidates = CandidateGenerator(
            simple_table, QdTreeBuilder(), 25, 25, 8, 0.2, rng
        )
        initial = RangeLayoutBuilder("y").build(simple_table, [], 8, rng)
        return RegretStrategy(
            CostEvaluator(simple_table), initial, candidates, alpha=alpha, **kwargs
        )

    def test_switches_when_savings_exceed_alpha(self, simple_table, stream, rng):
        strategy = self.make(simple_table, rng, alpha=5.0)
        summary = strategy.run(stream)
        assert summary.num_switches >= 1

    def test_huge_alpha_prevents_switching(self, simple_table, stream, rng):
        strategy = self.make(simple_table, rng, alpha=1e9)
        summary = strategy.run(stream)
        assert summary.num_switches == 0

    def test_more_conservative_than_greedy(self, simple_table, stream, rng):
        greedy_candidates = CandidateGenerator(
            simple_table, QdTreeBuilder(), 25, 25, 8, 0.2, np.random.default_rng(0)
        )
        initial = RangeLayoutBuilder("y").build(
            simple_table, [], 8, np.random.default_rng(1)
        )
        greedy = GreedyStrategy(
            CostEvaluator(simple_table), initial, greedy_candidates, alpha=50.0
        )
        greedy_switches = greedy.run(stream).num_switches

        regret = self.make(simple_table, np.random.default_rng(0), alpha=50.0)
        regret_switches = regret.run(stream).num_switches
        assert regret_switches <= greedy_switches

    def test_alternative_cap_respected(self, simple_table, stream, rng):
        strategy = self.make(simple_table, rng, alpha=1e9, max_alternatives=2)
        strategy.run(stream)
        assert len(strategy._alternatives) <= 2

    def test_history_cap(self, simple_table, stream, rng):
        strategy = self.make(simple_table, rng, alpha=1e9, history_cap=40)
        strategy.run(stream)
        assert len(strategy._history) <= 40
