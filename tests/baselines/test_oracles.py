"""Tests for the MTS Optimal and Offline Optimal oracles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    MTSOptimalStrategy,
    OfflineOptimalStrategy,
    precompute_template_layouts,
)
from repro.core import CostEvaluator
from repro.layouts import QdTreeBuilder
from repro.queries import Query, QueryStream, between
from repro.workloads import generate_stream
from repro.workloads.templates import QueryTemplate


def drift_templates():
    def low(rng):
        start = float(rng.uniform(0, 30))
        return between("x", start, start + 3.0)

    def high(rng):
        start = float(rng.uniform(60, 95))
        return between("x", start, start + 3.0)

    return (QueryTemplate("low", low), QueryTemplate("high", high))


@pytest.fixture
def stream(rng):
    return generate_stream(drift_templates(), 300, 6, rng)


@pytest.fixture
def template_layouts(simple_table, stream, rng):
    return precompute_template_layouts(
        simple_table, QdTreeBuilder(), stream, 8, 0.2, rng
    )


class TestPrecompute:
    def test_one_layout_per_template(self, template_layouts):
        assert set(template_layouts) == {"low", "high"}

    def test_layouts_specialized(self, simple_table, template_layouts, rng):
        """Each template's layout must beat the other template's layout on
        its own queries."""
        evaluator = CostEvaluator(simple_table)
        low_queries = [
            Query(predicate=between("x", 10.0, 13.0), template="low")
            for _ in range(5)
        ]
        low_cost_on_low = evaluator.average_cost(template_layouts["low"], low_queries)
        low_cost_on_high = evaluator.average_cost(template_layouts["high"], low_queries)
        assert low_cost_on_low <= low_cost_on_high + 1e-9


class TestMTSOptimal:
    def test_runs_and_accounts(self, simple_table, stream, template_layouts, rng):
        strategy = MTSOptimalStrategy(
            CostEvaluator(simple_table), template_layouts, alpha=10.0, rng=rng
        )
        summary = strategy.run(stream)
        assert summary.num_queries == len(stream)
        assert summary.total_reorg_cost == 10.0 * summary.num_switches

    def test_requires_layouts(self, simple_table, rng):
        with pytest.raises(ValueError):
            MTSOptimalStrategy(CostEvaluator(simple_table), {}, alpha=10.0, rng=rng)

    def test_initial_layout_included(self, simple_table, stream, template_layouts, rng):
        from repro.layouts import RoundRobinLayout

        initial = RoundRobinLayout(8)
        strategy = MTSOptimalStrategy(
            CostEvaluator(simple_table),
            template_layouts,
            alpha=10.0,
            rng=rng,
            initial_layout=initial,
        )
        assert strategy.algorithm.current == initial.layout_id


class TestOfflineOptimal:
    def test_switches_exactly_at_boundaries(
        self, simple_table, stream, template_layouts
    ):
        strategy = OfflineOptimalStrategy(
            CostEvaluator(simple_table), template_layouts, alpha=10.0
        )
        summary = strategy.run(stream)
        # Layout changes happen only at template switches (fewer are allowed
        # when one layout wins consecutive segments).
        assert summary.num_switches <= len(stream.segments) - 1
        assert summary.num_switches >= 1
        switch_steps = set(strategy.ledger.switch_steps)
        assert switch_steps <= set(stream.segment_boundaries())

    def test_requires_segmented_stream(self, simple_table, template_layouts):
        strategy = OfflineOptimalStrategy(
            CostEvaluator(simple_table), template_layouts, alpha=10.0
        )
        bare = QueryStream(
            queries=(Query(predicate=between("x", 0, 1), template="low"),)
        )
        with pytest.raises(ValueError, match="segmented"):
            strategy.run(bare)

    def test_lower_bounds_mts_optimal_query_cost(
        self, simple_table, stream, template_layouts, rng
    ):
        evaluator = CostEvaluator(simple_table)
        offline = OfflineOptimalStrategy(evaluator, template_layouts, alpha=10.0)
        offline_summary = offline.run(stream)
        online = MTSOptimalStrategy(
            evaluator, template_layouts, alpha=10.0, rng=np.random.default_rng(0)
        )
        online_summary = online.run(stream)
        assert (
            offline_summary.total_query_cost
            <= online_summary.total_query_cost + 1e-9
        )
