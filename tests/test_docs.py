"""The documentation gate itself: links resolve, public APIs documented."""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_docs  # noqa: E402  (tools/ is not a package)


def test_required_documents_exist():
    assert (REPO_ROOT / "README.md").exists()
    assert (REPO_ROOT / "docs" / "architecture.md").exists()
    covered = {path.name for path in check_docs.markdown_files()}
    assert {"README.md", "ROADMAP.md", "architecture.md"} <= covered


def test_markdown_links_resolve():
    assert check_docs.check_markdown_links() == []


def test_public_apis_documented():
    assert check_docs.check_docstrings() == []


def test_link_checker_catches_breakage(tmp_path):
    good = tmp_path / "good.md"
    good.write_text("# Title\n\nsee [other](broken.md) and [gone](good.md#nope)\n")
    errors = check_docs.check_markdown_links([good])
    assert len(errors) == 2
    assert any("missing file" in error for error in errors)
    assert any("missing heading" in error for error in errors)


def test_link_checker_accepts_valid_links(tmp_path):
    target = tmp_path / "target.md"
    target.write_text("# Some Heading\n")
    source = tmp_path / "source.md"
    source.write_text(
        "see [t](target.md), [anchor](target.md#some-heading), "
        "[self](#local), [web](https://example.com)\n\n# Local\n"
    )
    assert check_docs.check_markdown_links([source]) == []


def test_link_checker_sees_titled_links(tmp_path):
    source = tmp_path / "titled.md"
    source.write_text('see [design](missing.md "the design doc")\n')
    errors = check_docs.check_markdown_links([source])
    assert len(errors) == 1 and "missing file" in errors[0]


def test_link_checker_ignores_code_fences(tmp_path):
    source = tmp_path / "fenced.md"
    source.write_text("# T\n\n```python\nx = '[not a link](nowhere.md)'\n```\n")
    assert check_docs.check_markdown_links([source]) == []


def test_heading_slugs_follow_github_rules():
    slugs = check_docs.heading_slugs(
        "# The Pipelined Reorganization: Epoch Protocol\n## `code` & *stars*\n"
    )
    assert "the-pipelined-reorganization-epoch-protocol" in slugs
    assert "code--stars" in slugs


def test_heading_slugs_disambiguate_duplicates():
    slugs = check_docs.heading_slugs("# Invariants\n## Other\n# Invariants\n")
    assert {"invariants", "invariants-1", "other"} <= slugs


def test_anchor_with_unslugified_punctuation_is_broken(tmp_path):
    """Linking ``#rule-ids-&-severity`` instead of the GitHub slug fails.

    GitHub strips punctuation when slugging headings; a link that keeps
    the literal ``&`` can never resolve and must be reported.
    """
    target = tmp_path / "catalogue.md"
    target.write_text("# Catalogue\n\n## Rule IDs & Severity\n")
    source = tmp_path / "index.md"
    source.write_text(
        "bad: [rules](catalogue.md#rule-ids-&-severity)\n"
        "good: [rules](catalogue.md#rule-ids--severity)\n"
    )
    errors = check_docs.check_markdown_links([source])
    assert len(errors) == 1
    assert "rule-ids-&-severity" in errors[0] and "missing heading" in errors[0]


def test_anchor_beyond_duplicate_count_is_broken(tmp_path):
    """Two ``# Invariants`` headings yield ``-1`` but never ``-2``."""
    target = tmp_path / "doc.md"
    target.write_text("# Invariants\n\ntext\n\n# Invariants\n")
    source = tmp_path / "index.md"
    source.write_text(
        "[first](doc.md#invariants) [second](doc.md#invariants-1) "
        "[phantom](doc.md#invariants-2)\n"
    )
    errors = check_docs.check_markdown_links([source])
    assert len(errors) == 1 and "invariants-2" in errors[0]


def test_malformed_external_url_is_reported(tmp_path):
    source = tmp_path / "ext.md"
    source.write_text("see [spec](https://example.com/a%20b) and [broken](https://)\n")
    errors = check_docs.check_markdown_links([source])
    assert len(errors) == 1 and "malformed" in errors[0]


def test_docstring_checker_covers_properties_and_classmethods():
    """New public surface of every flavor lands in the audit.

    ``_public_members`` must unwrap properties, staticmethods and
    classmethods so an undocumented accessor cannot hide behind its
    descriptor — the gap RPR008's ``__all__`` audit does not see.
    """
    import types

    module = types.ModuleType("fake_pkg.fake_mod")

    class Widget:
        """Documented class."""

        @property
        def documented_prop(self):
            """Has one."""

        @property
        def undocumented_prop(self):
            return None

        @staticmethod
        def undocumented_static():
            pass

        @classmethod
        def undocumented_cls(cls):
            pass

    Widget.__module__ = "fake_pkg.fake_mod"
    module.Widget = Widget
    members = dict(check_docs._public_members(module))
    assert {
        "Widget",
        "Widget.documented_prop",
        "Widget.undocumented_prop",
        "Widget.undocumented_static",
        "Widget.undocumented_cls",
    } <= set(members)
    import inspect

    undocumented = [q for q, obj in members.items() if not inspect.getdoc(obj)]
    assert sorted(undocumented) == [
        "Widget.undocumented_cls",
        "Widget.undocumented_prop",
        "Widget.undocumented_static",
    ]


def test_docstring_checker_skips_reexports():
    """A name re-exported from another module is audited where defined."""
    import types

    module = types.ModuleType("fake_pkg.facade")

    def foreign():
        pass

    foreign.__module__ = "somewhere.else"
    module.foreign = foreign
    assert check_docs._public_members(module) == []


def test_docstring_checker_flags_gaps():
    import types

    module = types.ModuleType("fake_mod")

    def documented():
        """Has one."""

    def undocumented():
        pass

    documented.__module__ = undocumented.__module__ = "fake_mod"
    module.documented = documented
    module.undocumented = undocumented
    members = dict(check_docs._public_members(module))
    assert set(members) == {"documented", "undocumented"}


def test_readme_quickstart_block_executes(tmp_path):
    """The README's flagship python block must run verbatim.

    The docs gate checks links and docstrings; this check keeps the
    quickstart honest against API drift — it extracts the first python
    code fence from README.md and executes it (store root redirected
    into the test's tmp dir).
    """
    import re

    readme = (Path(__file__).parent.parent / "README.md").read_text()
    block = re.findall(r"```python\n(.*?)```", readme, re.DOTALL)[0]
    assert "LayoutEngine" in block  # the block this test exists to protect
    block = block.replace("/tmp/oreo-store", str(tmp_path / "store"))
    exec(compile(block, "README.md:quickstart", "exec"), {})
