"""Shared fixtures: small deterministic tables, schemas and streams.

Also registers the hypothesis profiles: ``dev`` (default; no deadline so
laptop hiccups never flake a property) and ``ci`` (pinned: derandomized
fixed seed, explicit no-deadline, reproduction blobs printed).  CI selects
with ``HYPOTHESIS_PROFILE=ci``; profiles load before test modules import,
so per-test ``@settings`` inherit the pinned defaults.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings

from repro.layouts.metadata import build_layout_metadata
from repro.queries import Query, between, eq
from repro.storage import ColumnSpec, Schema, Table

settings.register_profile("dev", deadline=None)
settings.register_profile("ci", derandomize=True, deadline=None, print_blob=True)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def simple_schema() -> Schema:
    return Schema(
        columns=(
            ColumnSpec("x", "numeric"),
            ColumnSpec("y", "numeric"),
            ColumnSpec("color", "categorical", ("red", "green", "blue")),
        )
    )


@pytest.fixture
def simple_table(simple_schema, rng) -> Table:
    n = 1000
    return Table(
        simple_schema,
        {
            "x": rng.uniform(0.0, 100.0, size=n),
            "y": rng.integers(0, 50, size=n).astype(np.int64),
            "color": rng.integers(0, 3, size=n).astype(np.int32),
        },
    )


@pytest.fixture
def simple_metadata(simple_table):
    """Metadata for a 4-way row-striped partitioning of simple_table."""
    assignment = np.arange(simple_table.num_rows) % 4
    return build_layout_metadata(simple_table, assignment)


@pytest.fixture
def range_query() -> Query:
    return Query(predicate=between("x", 10.0, 20.0), template="range")


@pytest.fixture
def point_query() -> Query:
    return Query(predicate=eq("color", 1), template="point")


def make_uniform_costs(states, value):
    """Cost mapping assigning ``value`` to every state (test helper)."""
    return {s: value for s in states}
