"""Smoke tests for the example scripts.

Full example runs take tens of seconds each, so the default check compiles
every script and executes the fast ones end to end; the slow ones are
exercised via their importable helper functions at reduced scale.
"""

from __future__ import annotations

import py_compile
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {path.name for path in ALL_EXAMPLES}
    assert {
        "quickstart.py",
        "engine_quickstart.py",
        "workload_drift.py",
        "telemetry_monitoring.py",
        "custom_layout.py",
        "storage_budget.py",
        "streaming_ingest.py",
        "index_tuning.py",
        "async_reorg_demo.py",
    } <= names


@pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path, tmp_path):
    py_compile.compile(str(path), cfile=str(tmp_path / "out.pyc"), doraise=True)


@pytest.mark.parametrize(
    "script", ["storage_budget.py", "index_tuning.py", "engine_quickstart.py"]
)
def test_fast_examples_run(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip()


def test_workload_drift_helpers():
    """Exercise the drift example's building blocks at tiny scale."""
    sys.path.insert(0, str(EXAMPLES_DIR))
    try:
        import workload_drift

        rng = np.random.default_rng(0)
        bundle = workload_drift.build_rotating_bundle(rng)
        assert bundle.table.num_rows == workload_drift.NUM_ROWS
        assert len(bundle.templates) == workload_drift.NUM_COLUMNS
        stream = bundle.workload(50, 2, rng)
        from repro.core import RunLedger

        ledger = RunLedger()
        for _query in stream:
            ledger.record(0.1, 0.0, "l", switched=False)
        rows = workload_drift.per_segment_costs(stream, ledger)
        assert len(rows) == 2
        assert all(cost == pytest.approx(0.1) for _, _, _, cost in rows)
    finally:
        sys.path.remove(str(EXAMPLES_DIR))


def test_async_reorg_demo_helpers():
    """Exercise the async-reorg demo's building blocks at tiny scale."""
    sys.path.insert(0, str(EXAMPLES_DIR))
    try:
        import async_reorg_demo

        from repro.workloads import tpch

        rng = np.random.default_rng(0)
        bundle = tpch.load(1_000, rng)
        queries = async_reorg_demo.narrow_queries(bundle.table, "l_quantity", 5, rng)
        assert len(queries) == 5
        assert all(q.columns() == {"l_quantity"} for q in queries)
        text = async_reorg_demo.histogram([0.5, 3.0, 30.0, 400.0])
        assert text.count("(1)") == 4  # one sample per populated bucket
    finally:
        sys.path.remove(str(EXAMPLES_DIR))


def test_custom_layout_builder():
    """The custom builder from the example honours the LayoutBuilder API."""
    sys.path.insert(0, str(EXAMPLES_DIR))
    try:
        import custom_layout

        from repro.queries import Query, between
        from repro.workloads import tpch

        rng = np.random.default_rng(0)
        bundle = tpch.load(2_000, rng)
        builder = custom_layout.HotColumnSortBuilder(bundle.default_sort_column)
        workload = [Query(predicate=between("l_quantity", 1.0, 10.0))] * 5
        layout = builder.build(bundle.table, workload, 4, rng)
        assert layout.column == "l_quantity"
        fallback = builder.build(bundle.table, [], 4, rng)
        assert fallback.column == bundle.default_sort_column
    finally:
        sys.path.remove(str(EXAMPLES_DIR))
