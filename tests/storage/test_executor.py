"""Tests for the physical query executor: pruning + correctness."""

from __future__ import annotations

import pytest

from repro.layouts import RangeLayoutBuilder, RoundRobinLayout
from repro.queries import Query, between, eq
from repro.storage import PartitionStore, QueryExecutor


@pytest.fixture
def executor(tmp_path):
    return QueryExecutor(PartitionStore(tmp_path / "store"))


@pytest.fixture
def stored_range(executor, simple_table, rng):
    """simple_table partitioned by x-ranges (prunable for x-predicates)."""
    layout = RangeLayoutBuilder("x").build(simple_table, [], 8, rng)
    return executor.store.materialize(simple_table, layout)


class TestExecution:
    def test_matches_equal_brute_force(self, executor, stored_range, simple_table):
        query = Query(predicate=between("x", 10.0, 20.0))
        result = executor.execute(stored_range, query)
        expected = int(query.predicate.evaluate(simple_table.columns).sum())
        assert result.rows_matched == expected

    def test_range_layout_prunes_partitions(self, executor, stored_range):
        query = Query(predicate=between("x", 10.0, 20.0))
        result = executor.execute(stored_range, query)
        assert result.partitions_scanned < result.partitions_total
        assert result.rows_scanned < result.total_rows

    def test_unaligned_layout_scans_everything(self, executor, simple_table):
        stored = executor.store.materialize(simple_table, RoundRobinLayout(8))
        query = Query(predicate=between("x", 10.0, 20.0))
        result = executor.execute(stored, query)
        assert result.partitions_scanned == result.partitions_total

    def test_no_false_negatives_under_pruning(self, executor, stored_range, simple_table):
        # Every matching row must be found even though partitions are skipped.
        for low in (0.0, 25.0, 50.0, 99.0):
            query = Query(predicate=between("x", low, low + 10.0))
            result = executor.execute(stored_range, query)
            expected = int(query.predicate.evaluate(simple_table.columns).sum())
            assert result.rows_matched == expected

    def test_impossible_query_scans_nothing(self, executor, stored_range):
        query = Query(predicate=between("x", 1e6, 2e6))
        result = executor.execute(stored_range, query)
        assert result.partitions_scanned == 0
        assert result.rows_matched == 0
        assert result.accessed_fraction == 0.0

    def test_fractions_sum_to_one(self, executor, stored_range):
        query = Query(predicate=between("x", 10.0, 20.0))
        result = executor.execute(stored_range, query)
        assert result.accessed_fraction + result.skipped_fraction == pytest.approx(1.0)

    def test_elapsed_positive(self, executor, stored_range):
        result = executor.execute(stored_range, Query(predicate=eq("y", 3)))
        assert result.elapsed_seconds > 0

    def test_bytes_read_consistent(self, executor, stored_range):
        query = Query(predicate=between("x", 10.0, 20.0))
        result = executor.execute(stored_range, query)
        assert 0 < result.bytes_read <= stored_range.total_bytes


class TestFullScan:
    def test_scan_reads_all_rows(self, executor, stored_range, simple_table):
        result = executor.full_scan(stored_range)
        assert result.rows_scanned == simple_table.num_rows
        assert result.bytes_read == stored_range.total_bytes
        assert result.elapsed_seconds > 0


class TestZoneMapCache:
    def test_index_cache_bounded_across_many_layouts(self, executor, simple_table, rng):
        """Regression: retired layouts must not accumulate compiled indices."""
        for _ in range(QueryExecutor.ZONEMAP_CACHE_CAP + 5):
            layout = RoundRobinLayout(4)
            stored = executor.store.materialize(simple_table, layout)
            executor.execute(stored, Query(predicate=between("x", 0.0, 5.0)))
        assert len(executor._zonemaps) <= QueryExecutor.ZONEMAP_CACHE_CAP

    def test_forget_drops_index(self, executor, stored_range):
        executor.execute(stored_range, Query(predicate=between("x", 0.0, 5.0)))
        layout_id = stored_range.layout.layout_id
        assert layout_id in executor._zonemaps
        executor.forget(layout_id)
        assert layout_id not in executor._zonemaps

    def test_recompiles_when_metadata_replaced(self, executor, simple_table, rng):
        layout = RangeLayoutBuilder("x").build(simple_table, [], 8, rng)
        first = executor.store.materialize(simple_table, layout)
        executor.execute(first, Query(predicate=between("x", 0.0, 5.0)))
        index_before = executor._zonemaps[layout.layout_id]
        second = executor.store.materialize(simple_table, layout)
        executor.execute(second, Query(predicate=between("x", 0.0, 5.0)))
        index_after = executor._zonemaps[layout.layout_id]
        assert index_after is not index_before
        assert index_after.metadata is second.metadata


class TestExecuteBatch:
    def test_batch_results_match_single_execution(self, executor, stored_range, simple_table):
        queries = [
            Query(predicate=between("x", float(i * 12), float(i * 12 + 15))) for i in range(6)
        ] + [Query(predicate=eq("y", 3))]
        batch = executor.execute_batch(stored_range, queries)
        assert len(batch) == len(queries)
        for query, batched in zip(queries, batch, strict=True):
            single = executor.execute(stored_range, query)
            assert batched.rows_matched == single.rows_matched
            assert batched.rows_scanned == single.rows_scanned
            assert batched.partitions_scanned == single.partitions_scanned
            assert batched.bytes_read == single.bytes_read
            assert batched.total_rows == single.total_rows

    def test_batch_matches_brute_force(self, executor, stored_range, simple_table):
        queries = [Query(predicate=between("x", 5.0, 42.0)), Query(predicate=eq("color", 1))]
        for query, result in zip(queries, executor.execute_batch(stored_range, queries), strict=True):
            expected = int(query.predicate.evaluate(simple_table.columns).sum())
            assert result.rows_matched == expected

    def test_empty_batch(self, executor, stored_range):
        assert executor.execute_batch(stored_range, []) == []


class TestApplyReorg:
    def _reorganize(self, executor, simple_table, rng):
        from repro.storage import reorganize

        layout = RangeLayoutBuilder("x").build(simple_table, [], 8, rng)
        stored = executor.store.materialize(simple_table, layout)
        executor.execute(stored, Query(predicate=between("x", 0.0, 5.0)))
        target = RangeLayoutBuilder("x").build(simple_table, [], 6, rng)
        new_stored, result = reorganize(executor.store, stored, target, simple_table.schema)
        return stored, new_stored, result

    def test_apply_reorg_migrates_cached_index(self, executor, simple_table, rng):
        stored, new_stored, result = self._reorganize(executor, simple_table, rng)
        assert result.delta is not None
        executor.apply_reorg(stored.layout.layout_id, new_stored, result.delta)
        assert stored.layout.layout_id not in executor._zonemaps
        migrated = executor._zonemaps[new_stored.layout.layout_id]
        assert migrated.metadata is new_stored.metadata
        # The migrated index must answer queries exactly like a fresh one.
        query = Query(predicate=between("x", 20.0, 40.0))
        result_after = executor.execute(new_stored, query)
        expected = int(query.predicate.evaluate(
            executor.store.read_all(new_stored, simple_table.schema).columns
        ).sum())
        assert result_after.rows_matched == expected

    def test_apply_reorg_without_cached_index_is_noop(self, executor, simple_table, rng):
        stored, new_stored, result = self._reorganize(executor, simple_table, rng)
        executor.forget(stored.layout.layout_id)
        executor.apply_reorg(stored.layout.layout_id, new_stored, result.delta)
        assert new_stored.layout.layout_id not in executor._zonemaps

    def test_apply_reorg_with_none_delta_degrades_to_forget(self, executor, simple_table, rng):
        stored, new_stored, _ = self._reorganize(executor, simple_table, rng)
        executor.apply_reorg(stored.layout.layout_id, new_stored, None)
        assert stored.layout.layout_id not in executor._zonemaps
        assert new_stored.layout.layout_id not in executor._zonemaps
        # Next execution recompiles lazily and still answers correctly.
        query = Query(predicate=between("x", 10.0, 20.0))
        outcome = executor.execute(new_stored, query)
        assert outcome.rows_matched >= 0


class TestCompiledPlanCache:
    def test_batch_plan_compiled_once_per_sample(self, executor, stored_range):
        queries = [Query(predicate=between("x", float(i * 9), float(i * 9 + 12))) for i in range(4)]
        first = executor.execute_batch(stored_range, queries)
        key = tuple(q.predicate.cache_key() for q in queries)
        assert key in executor._compiled
        compiled = executor._compiled[key]
        second = executor.execute_batch(stored_range, queries)
        assert executor._compiled[key] is compiled  # reused, not recompiled
        for a, b in zip(first, second, strict=True):
            assert (a.rows_matched, a.rows_scanned, a.partitions_scanned) == (
                b.rows_matched,
                b.rows_scanned,
                b.partitions_scanned,
            )

    def test_batch_plan_cache_bounded(self, executor, stored_range):
        for i in range(QueryExecutor.COMPILED_CACHE_CAP + 8):
            executor.execute_batch(
                stored_range, [Query(predicate=between("x", float(i), float(i) + 0.5))]
            )
        assert len(executor._compiled) <= QueryExecutor.COMPILED_CACHE_CAP
