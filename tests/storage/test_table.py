"""Tests for Schema, ColumnSpec and the columnar Table."""

from __future__ import annotations

import numpy as np
import pytest

from repro.storage import ColumnSpec, Schema, Table


class TestColumnSpec:
    def test_numeric_spec(self):
        spec = ColumnSpec("x", "numeric")
        assert spec.cardinality is None

    def test_categorical_requires_vocabulary(self):
        with pytest.raises(ValueError, match="vocabulary"):
            ColumnSpec("c", "categorical")

    def test_numeric_rejects_vocabulary(self):
        with pytest.raises(ValueError, match="must not carry"):
            ColumnSpec("x", "numeric", ("a",))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown column kind"):
            ColumnSpec("x", "text")

    def test_encode_decode_roundtrip(self):
        spec = ColumnSpec("c", "categorical", ("a", "b", "c"))
        assert spec.encode("b") == 1
        assert spec.decode(1) == "b"
        assert spec.cardinality == 3

    def test_encode_unknown_value(self):
        spec = ColumnSpec("c", "categorical", ("a",))
        with pytest.raises(KeyError, match="not in vocabulary"):
            spec.encode("z")

    def test_encode_numeric_column_is_type_error(self):
        spec = ColumnSpec("x", "numeric")
        with pytest.raises(TypeError):
            spec.encode("a")
        with pytest.raises(TypeError):
            spec.decode(0)


class TestSchema:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Schema(columns=(ColumnSpec("x", "numeric"), ColumnSpec("x", "numeric")))

    def test_lookup_and_containment(self, simple_schema):
        assert "x" in simple_schema
        assert "missing" not in simple_schema
        assert simple_schema["color"].kind == "categorical"
        with pytest.raises(KeyError, match="no column"):
            simple_schema["missing"]

    def test_names_order(self, simple_schema):
        assert simple_schema.names() == ["x", "y", "color"]

    def test_kind_partitions(self, simple_schema):
        assert simple_schema.numeric_names() == ["x", "y"]
        assert simple_schema.categorical_names() == ["color"]

    def test_len_and_iter(self, simple_schema):
        assert len(simple_schema) == 3
        assert [spec.name for spec in simple_schema] == ["x", "y", "color"]


class TestTable:
    def test_missing_column_rejected(self, simple_schema):
        with pytest.raises(ValueError, match="missing"):
            Table(simple_schema, {"x": np.zeros(3), "y": np.zeros(3)})

    def test_extra_column_rejected(self, simple_schema):
        with pytest.raises(ValueError, match="not in schema"):
            Table(
                simple_schema,
                {
                    "x": np.zeros(3),
                    "y": np.zeros(3),
                    "color": np.zeros(3, dtype=np.int32),
                    "zz": np.zeros(3),
                },
            )

    def test_unequal_lengths_rejected(self, simple_schema):
        with pytest.raises(ValueError, match="unequal"):
            Table(
                simple_schema,
                {
                    "x": np.zeros(3),
                    "y": np.zeros(4),
                    "color": np.zeros(3, dtype=np.int32),
                },
            )

    def test_num_rows_and_len(self, simple_table):
        assert simple_table.num_rows == 1000
        assert len(simple_table) == 1000

    def test_getitem_unknown_column(self, simple_table):
        with pytest.raises(KeyError, match="no column"):
            simple_table["missing"]

    def test_take_materializes_rows(self, simple_table):
        subset = simple_table.take(np.array([1, 5, 7]))
        assert subset.num_rows == 3
        assert subset["x"][0] == simple_table["x"][1]

    def test_sample_size_and_validation(self, simple_table, rng):
        sample = simple_table.sample(0.1, rng)
        assert sample.num_rows == 100
        with pytest.raises(ValueError):
            simple_table.sample(0.0, rng)
        with pytest.raises(ValueError):
            simple_table.sample(1.5, rng)

    def test_sample_always_at_least_one_row(self, simple_table, rng):
        assert simple_table.sample(1e-9, rng).num_rows == 1

    def test_sample_without_replacement(self, simple_table, rng):
        sample = simple_table.sample(1.0, rng)
        assert sample.num_rows == simple_table.num_rows
        assert np.sort(sample["x"]).tolist() == np.sort(simple_table["x"]).tolist()

    def test_head(self, simple_table):
        assert simple_table.head(5).num_rows == 5
        assert simple_table.head(10_000).num_rows == 1000

    def test_select_view(self, simple_table):
        view = simple_table.select(["x", "y"])
        assert set(view) == {"x", "y"}

    def test_memory_bytes_positive(self, simple_table):
        assert simple_table.memory_bytes() > 0

    def test_concat_roundtrip(self, simple_table):
        first = simple_table.take(np.arange(400))
        second = simple_table.take(np.arange(400, 1000))
        merged = Table.concat([first, second])
        assert merged.num_rows == 1000
        assert np.array_equal(merged["x"], simple_table["x"])

    def test_concat_schema_mismatch(self, simple_table, simple_schema):
        other_schema = Schema(columns=(ColumnSpec("x", "numeric"),))
        other = Table(other_schema, {"x": np.zeros(2)})
        with pytest.raises(ValueError, match="different schemas"):
            Table.concat([simple_table, other])

    def test_concat_empty_list(self):
        with pytest.raises(ValueError, match="zero tables"):
            Table.concat([])
