"""Tests for the on-disk partition store."""

from __future__ import annotations

import numpy as np
import pytest

from repro.layouts import RangeLayout, RoundRobinLayout
from repro.storage import PartitionStore


@pytest.fixture
def store(tmp_path):
    return PartitionStore(tmp_path / "store")


class TestMaterialize:
    def test_roundtrip_preserves_rows(self, store, simple_table):
        layout = RoundRobinLayout(4)
        stored = store.materialize(simple_table, layout)
        restored = store.read_all(stored, simple_table.schema)
        assert restored.num_rows == simple_table.num_rows
        assert np.sort(restored["x"]).tolist() == np.sort(simple_table["x"]).tolist()

    def test_partition_count_and_sizes(self, store, simple_table):
        stored = store.materialize(simple_table, RoundRobinLayout(4))
        assert len(stored.partitions) == 4
        assert stored.total_rows == simple_table.num_rows
        assert all(p.row_count == 250 for p in stored.partitions)
        assert all(p.byte_size > 0 for p in stored.partitions)

    def test_files_exist_on_disk(self, store, simple_table):
        stored = store.materialize(simple_table, RoundRobinLayout(2))
        for partition in stored.partitions:
            assert partition.path.exists()

    def test_metadata_matches_partitions(self, store, simple_table):
        stored = store.materialize(simple_table, RoundRobinLayout(4))
        assert stored.metadata.num_partitions == 4
        assert stored.metadata.total_rows == simple_table.num_rows

    def test_empty_partitions_omitted(self, store, simple_table):
        # Boundaries far above the data: everything lands in partition 0.
        layout = RangeLayout("x", np.array([1e9, 2e9]))
        stored = store.materialize(simple_table, layout)
        assert len(stored.partitions) == 1
        assert stored.partitions[0].row_count == simple_table.num_rows

    def test_rematerialize_overwrites(self, store, simple_table):
        layout = RoundRobinLayout(2)
        store.materialize(simple_table, layout)
        stored = store.materialize(simple_table, layout)
        assert len(stored.partitions) == 2

    def test_compression_reduces_size(self, tmp_path, simple_table):
        # Constant columns compress extremely well; compare both modes.
        compressed = PartitionStore(tmp_path / "c", compress=True)
        raw = PartitionStore(tmp_path / "r", compress=False)
        layout = RoundRobinLayout(1)
        constant = simple_table.take(np.zeros(1000, dtype=np.int64))
        size_compressed = compressed.materialize(constant, layout).total_bytes
        size_raw = raw.materialize(constant, layout).total_bytes
        assert size_compressed < size_raw


class TestReads:
    def test_read_partition_columns(self, store, simple_table):
        stored = store.materialize(simple_table, RoundRobinLayout(4))
        columns = store.read_partition(stored.partitions[0])
        assert set(columns) == set(simple_table.schema.names())
        assert len(columns["x"]) == 250

    def test_partition_by_id(self, store, simple_table):
        stored = store.materialize(simple_table, RoundRobinLayout(4))
        assert stored.partition_by_id(2).partition_id == 2
        with pytest.raises(KeyError):
            stored.partition_by_id(99)


class TestCleanup:
    def test_delete_layout(self, store, simple_table):
        stored = store.materialize(simple_table, RoundRobinLayout(2))
        store.delete_layout(stored)
        for partition in stored.partitions:
            assert not partition.path.exists()

    def test_delete_missing_layout_is_noop(self, store, simple_table):
        stored = store.materialize(simple_table, RoundRobinLayout(2))
        store.delete_layout(stored)
        store.delete_layout(stored)  # idempotent

    def test_disk_usage_tracks_files(self, store, simple_table):
        assert store.disk_usage() == 0
        stored = store.materialize(simple_table, RoundRobinLayout(2))
        assert store.disk_usage() == stored.total_bytes
        store.delete_layout(stored)
        assert store.disk_usage() == 0
