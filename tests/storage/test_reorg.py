"""Tests for physical reorganization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.layouts import RangeLayoutBuilder, RoundRobinLayout
from repro.storage import PartitionStore, reorganize


@pytest.fixture
def store(tmp_path):
    return PartitionStore(tmp_path / "store")


class TestReorganize:
    def test_preserves_row_multiset(self, store, simple_table, rng):
        stored = store.materialize(simple_table, RoundRobinLayout(4))
        target = RangeLayoutBuilder("x").build(simple_table, [], 6, rng)
        new_stored, result = reorganize(store, stored, target, simple_table.schema)
        restored = store.read_all(new_stored, simple_table.schema)
        assert np.sort(restored["x"]).tolist() == np.sort(simple_table["x"]).tolist()
        assert result.rows_moved == simple_table.num_rows

    def test_old_layout_deleted_by_default(self, store, simple_table, rng):
        stored = store.materialize(simple_table, RoundRobinLayout(4))
        target = RangeLayoutBuilder("x").build(simple_table, [], 6, rng)
        old_paths = [p.path for p in stored.partitions]
        reorganize(store, stored, target, simple_table.schema)
        assert not any(path.exists() for path in old_paths)

    def test_keep_old_retains_files(self, store, simple_table, rng):
        stored = store.materialize(simple_table, RoundRobinLayout(4))
        target = RangeLayoutBuilder("x").build(simple_table, [], 6, rng)
        reorganize(store, stored, target, simple_table.schema, keep_old=True)
        assert all(p.path.exists() for p in stored.partitions)

    def test_new_layout_is_queryable(self, store, simple_table, rng):
        from repro.queries import Query, between
        from repro.storage import QueryExecutor

        stored = store.materialize(simple_table, RoundRobinLayout(4))
        target = RangeLayoutBuilder("x").build(simple_table, [], 6, rng)
        new_stored, _ = reorganize(store, stored, target, simple_table.schema)
        executor = QueryExecutor(store)
        query = Query(predicate=between("x", 10.0, 20.0))
        result = executor.execute(new_stored, query)
        expected = int(query.predicate.evaluate(simple_table.columns).sum())
        assert result.rows_matched == expected
        # The range layout must actually prune after reorganization.
        assert result.partitions_scanned < result.partitions_total

    def test_accounting_fields(self, store, simple_table, rng):
        stored = store.materialize(simple_table, RoundRobinLayout(4))
        target = RangeLayoutBuilder("x").build(simple_table, [], 6, rng)
        _, result = reorganize(store, stored, target, simple_table.schema)
        assert result.elapsed_seconds > 0
        assert result.bytes_read == stored.total_bytes
        assert result.bytes_written > 0
        assert result.partitions_written >= 1

    def test_reorg_to_same_layout_id_keeps_files(self, store, simple_table):
        layout = RoundRobinLayout(4)
        stored = store.materialize(simple_table, layout)
        new_stored, _ = reorganize(store, stored, layout, simple_table.schema)
        assert all(p.path.exists() for p in new_stored.partitions)


class TestReorgDelta:
    def test_delta_present_and_consistent(self, store, simple_table, rng):
        from repro.layouts import compute_reorg_delta

        stored = store.materialize(simple_table, RoundRobinLayout(4))
        target = RangeLayoutBuilder("x").build(simple_table, [], 6, rng)
        new_stored, result = reorganize(store, stored, target, simple_table.schema)
        assert result.delta is not None
        assert result.delta.old_metadata is stored.metadata
        assert result.delta.new_metadata is new_stored.metadata
        # Assignment-derived classification must agree with the metadata
        # diff wherever the diff can prove a carry.
        reference = compute_reorg_delta(stored.metadata, new_stored.metadata)
        assert set(result.delta.changed) >= set(reference.changed)

    def test_identity_reorg_delta_carries_all(self, store, simple_table, rng):
        # A value-deterministic layout: re-assigning the re-read rows lands
        # every row in its old partition, so nothing changes.  (Round-robin
        # would genuinely reshuffle: assignment depends on row order.)
        layout = RangeLayoutBuilder("x").build(simple_table, [], 6, rng)
        stored = store.materialize(simple_table, layout)
        new_stored, result = reorganize(store, stored, layout, simple_table.schema)
        assert result.delta is not None
        assert result.delta.changed == ()
        assert len(result.delta.carried_new) == len(new_stored.metadata.partitions)

    def test_delta_drives_incremental_index(self, store, simple_table, rng):
        from repro.layouts import ZoneMapIndex
        from repro.queries import between as between_

        stored = store.materialize(simple_table, RoundRobinLayout(4))
        index = ZoneMapIndex(stored.metadata)
        index.masks(between_("x", 0.0, 50.0))
        target = RangeLayoutBuilder("x").build(simple_table, [], 6, rng)
        new_stored, result = reorganize(store, stored, target, simple_table.schema)
        migrated = index.apply_reorg(result.delta)
        fresh = ZoneMapIndex(new_stored.metadata)
        probe = between_("x", 0.0, 50.0)
        np.testing.assert_array_equal(migrated._mask(probe, False), fresh._mask(probe, False))
        np.testing.assert_array_equal(migrated._mask(probe, True), fresh._mask(probe, True))
