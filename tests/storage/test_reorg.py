"""Tests for physical reorganization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.layouts import RangeLayoutBuilder, RoundRobinLayout
from repro.storage import PartitionStore, reorganize


@pytest.fixture
def store(tmp_path):
    return PartitionStore(tmp_path / "store")


class TestReorganize:
    def test_preserves_row_multiset(self, store, simple_table, rng):
        stored = store.materialize(simple_table, RoundRobinLayout(4))
        target = RangeLayoutBuilder("x").build(simple_table, [], 6, rng)
        new_stored, result = reorganize(store, stored, target, simple_table.schema)
        restored = store.read_all(new_stored, simple_table.schema)
        assert np.sort(restored["x"]).tolist() == np.sort(simple_table["x"]).tolist()
        assert result.rows_moved == simple_table.num_rows

    def test_old_layout_deleted_by_default(self, store, simple_table, rng):
        stored = store.materialize(simple_table, RoundRobinLayout(4))
        target = RangeLayoutBuilder("x").build(simple_table, [], 6, rng)
        old_paths = [p.path for p in stored.partitions]
        reorganize(store, stored, target, simple_table.schema)
        assert not any(path.exists() for path in old_paths)

    def test_keep_old_retains_files(self, store, simple_table, rng):
        stored = store.materialize(simple_table, RoundRobinLayout(4))
        target = RangeLayoutBuilder("x").build(simple_table, [], 6, rng)
        reorganize(store, stored, target, simple_table.schema, keep_old=True)
        assert all(p.path.exists() for p in stored.partitions)

    def test_new_layout_is_queryable(self, store, simple_table, rng):
        from repro.queries import Query, between
        from repro.storage import QueryExecutor

        stored = store.materialize(simple_table, RoundRobinLayout(4))
        target = RangeLayoutBuilder("x").build(simple_table, [], 6, rng)
        new_stored, _ = reorganize(store, stored, target, simple_table.schema)
        executor = QueryExecutor(store)
        query = Query(predicate=between("x", 10.0, 20.0))
        result = executor.execute(new_stored, query)
        expected = int(query.predicate.evaluate(simple_table.columns).sum())
        assert result.rows_matched == expected
        # The range layout must actually prune after reorganization.
        assert result.partitions_scanned < result.partitions_total

    def test_accounting_fields(self, store, simple_table, rng):
        stored = store.materialize(simple_table, RoundRobinLayout(4))
        target = RangeLayoutBuilder("x").build(simple_table, [], 6, rng)
        _, result = reorganize(store, stored, target, simple_table.schema)
        assert result.elapsed_seconds > 0
        assert result.bytes_read == stored.total_bytes
        assert result.bytes_written > 0
        assert result.partitions_written >= 1

    def test_reorg_to_same_layout_id_keeps_files(self, store, simple_table):
        layout = RoundRobinLayout(4)
        stored = store.materialize(simple_table, layout)
        new_stored, _ = reorganize(store, stored, layout, simple_table.schema)
        assert all(p.path.exists() for p in new_stored.partitions)
