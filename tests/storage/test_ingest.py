"""Tests for incremental batch ingestion (§III-C)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.layouts import RangeLayout, RangeLayoutBuilder
from repro.queries import Query, between
from repro.storage import PartitionStore, QueryExecutor, Table
from repro.storage.ingest import IncrementalStore


@pytest.fixture
def store(tmp_path):
    return PartitionStore(tmp_path / "store")


@pytest.fixture
def incremental(store, simple_schema):
    layout = RangeLayout("x", np.array([25.0, 50.0, 75.0]))
    return IncrementalStore(store, simple_schema, layout)


def make_batch(simple_schema, rng, n=500):
    return Table(
        simple_schema,
        {
            "x": rng.uniform(0.0, 100.0, size=n),
            "y": rng.integers(0, 50, size=n).astype(np.int64),
            "color": rng.integers(0, 3, size=n).astype(np.int32),
        },
    )


class TestIngest:
    def test_empty_batch_noop(self, incremental, simple_schema):
        empty = Table(
            simple_schema,
            {"x": np.empty(0), "y": np.empty(0), "color": np.empty(0, dtype=np.int32)},
        )
        assert incremental.ingest(empty) == 0
        assert incremental.num_partitions == 0

    def test_schema_mismatch_rejected(self, incremental):
        from repro.storage import ColumnSpec, Schema

        other = Table(Schema(columns=(ColumnSpec("z", "numeric"),)), {"z": np.zeros(3)})
        with pytest.raises(ValueError, match="schema"):
            incremental.ingest(other)

    def test_batches_accumulate(self, incremental, simple_schema, rng):
        for _ in range(3):
            incremental.ingest(make_batch(simple_schema, rng))
        assert incremental.total_rows == 1500
        assert incremental.batches_ingested == 3

    def test_partition_ids_globally_unique(self, incremental, simple_schema, rng):
        incremental.ingest(make_batch(simple_schema, rng))
        incremental.ingest(make_batch(simple_schema, rng))
        ids = [p.partition_id for p in incremental.stored().partitions]
        assert len(ids) == len(set(ids))

    def test_existing_partitions_untouched(self, incremental, simple_schema, rng):
        incremental.ingest(make_batch(simple_schema, rng))
        first_paths = {p.path: p.path.stat().st_mtime for p in incremental.stored().partitions}
        incremental.ingest(make_batch(simple_schema, rng))
        for path, mtime in first_paths.items():
            assert path.exists()
            assert path.stat().st_mtime == mtime

    def test_queries_see_all_batches(self, incremental, simple_schema, rng, store):
        batches = [make_batch(simple_schema, rng) for _ in range(3)]
        for batch in batches:
            incremental.ingest(batch)
        merged = Table.concat(batches)
        executor = QueryExecutor(store)
        query = Query(predicate=between("x", 10.0, 30.0))
        result = executor.execute(incremental.stored(), query)
        expected = int(query.predicate.evaluate(merged.columns).sum())
        assert result.rows_matched == expected

    def test_skipping_still_works_per_batch(self, incremental, simple_schema, rng, store):
        for _ in range(3):
            incremental.ingest(make_batch(simple_schema, rng))
        executor = QueryExecutor(store)
        result = executor.execute(
            incremental.stored(), Query(predicate=between("x", 10.0, 20.0))
        )
        # The layout ranges on x, so each batch contributes prunable parts.
        assert result.partitions_scanned < result.partitions_total


class TestFragmentation:
    def test_fresh_store(self, incremental):
        assert incremental.fragmentation(1000) == 1.0

    def test_grows_with_batches(self, incremental, simple_schema, rng):
        for _ in range(4):
            incremental.ingest(make_batch(simple_schema, rng))
        # 16 partitions for 2000 rows vs ideal 2 at 1000 rows/partition.
        assert incremental.fragmentation(1000) > 4.0


class TestConsolidate:
    def test_reduces_partition_count(self, incremental, simple_schema, rng):
        for _ in range(4):
            incremental.ingest(make_batch(simple_schema, rng))
        fragmented = incremental.num_partitions
        new_layout = RangeLayoutBuilder("x").build(
            make_batch(simple_schema, rng, 2000), [], 4, rng
        )
        incremental.consolidate(new_layout)
        assert incremental.num_partitions <= 4 < fragmented

    def test_preserves_rows(self, incremental, simple_schema, rng, store):
        batches = [make_batch(simple_schema, rng) for _ in range(3)]
        for batch in batches:
            incremental.ingest(batch)
        new_layout = RangeLayoutBuilder("y").build(batches[0], [], 4, rng)
        result = incremental.consolidate(new_layout)
        assert result.rows_moved == 1500
        assert incremental.total_rows == 1500
        merged = Table.concat(batches)
        restored = store.read_all(incremental.stored(), simple_schema)
        assert np.sort(restored["x"]).tolist() == pytest.approx(
            np.sort(merged["x"]).tolist()
        )

    def test_old_batch_files_removed(self, incremental, simple_schema, rng, store):
        incremental.ingest(make_batch(simple_schema, rng))
        old_paths = [p.path for p in incremental.stored().partitions]
        new_layout = RangeLayoutBuilder("x").build(
            make_batch(simple_schema, rng), [], 4, rng
        )
        incremental.consolidate(new_layout)
        assert not any(path.exists() for path in old_paths)

    def test_ingestion_continues_after_consolidation(
        self, incremental, simple_schema, rng
    ):
        incremental.ingest(make_batch(simple_schema, rng))
        new_layout = RangeLayoutBuilder("x").build(
            make_batch(simple_schema, rng), [], 4, rng
        )
        incremental.consolidate(new_layout)
        incremental.ingest(make_batch(simple_schema, rng))
        ids = [p.partition_id for p in incremental.stored().partitions]
        assert len(ids) == len(set(ids))
        assert incremental.total_rows == 1000


class TestEvaluatorSync:
    """An attached CostEvaluator prices the live materialized metadata and
    is revalidated surgically as batches append."""

    def _build(self, store, simple_schema, simple_table):
        from repro.core import CostEvaluator

        layout = RangeLayout("x", np.array([25.0, 50.0, 75.0]))
        evaluator = CostEvaluator(simple_table)
        incremental = IncrementalStore(
            store, simple_schema, layout, evaluator=evaluator
        )
        return incremental, evaluator, layout

    def test_prices_track_appends(self, store, simple_schema, simple_table, rng):
        incremental, evaluator, layout = self._build(store, simple_schema, simple_table)
        query = Query(predicate=between("x", 10.0, 40.0))
        assert evaluator.query_cost(layout, query) == 0.0  # nothing ingested yet
        incremental.ingest(make_batch(simple_schema, rng))
        key = query.cache_key()
        cached = evaluator._query_costs[layout.layout_id]
        # The cached entry was revalidated in place, not dropped...
        assert key in cached
        # ...and matches the scalar oracle on the *materialized* metadata.
        expected = incremental.stored().metadata.accessed_fraction(query.predicate)
        assert cached[key] == expected
        assert evaluator.query_cost(layout, query) == expected
        incremental.ingest(make_batch(simple_schema, rng, n=200))
        expected = incremental.stored().metadata.accessed_fraction(query.predicate)
        assert cached[key] == expected

    def test_append_delta_touches_only_new_partitions(
        self, store, simple_schema, simple_table, rng
    ):
        from repro.layouts import compute_reorg_delta

        incremental, evaluator, layout = self._build(store, simple_schema, simple_table)
        incremental.ingest(make_batch(simple_schema, rng))
        before = incremental.stored().metadata
        incremental.ingest(make_batch(simple_schema, rng, n=100))
        after = incremental.stored().metadata
        delta = compute_reorg_delta(before, after)
        assert len(delta.carried_new) == len(before.partitions)
        assert len(delta.changed) == len(after.partitions) - len(before.partitions)

    def test_consolidate_reregisters_new_layout(
        self, store, simple_schema, simple_table, rng
    ):
        incremental, evaluator, layout = self._build(store, simple_schema, simple_table)
        incremental.ingest(make_batch(simple_schema, rng))
        query = Query(predicate=between("x", 0.0, 30.0))
        evaluator.query_cost(layout, query)
        new_layout = RangeLayoutBuilder("x").build(
            make_batch(simple_schema, rng), [], 4, rng
        )
        incremental.consolidate(new_layout)
        assert layout.layout_id not in evaluator._metadata  # forgotten
        registered = evaluator._metadata[new_layout.layout_id]
        assert registered is incremental.stored().metadata
        expected = registered.accessed_fraction(query.predicate)
        assert evaluator.query_cost(new_layout, query) == expected
