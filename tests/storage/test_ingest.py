"""Tests for incremental batch ingestion (§III-C)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.layouts import RangeLayout, RangeLayoutBuilder
from repro.queries import Query, between
from repro.storage import PartitionStore, QueryExecutor, Table
from repro.storage.ingest import IncrementalStore


@pytest.fixture
def store(tmp_path):
    return PartitionStore(tmp_path / "store")


@pytest.fixture
def incremental(store, simple_schema):
    layout = RangeLayout("x", np.array([25.0, 50.0, 75.0]))
    return IncrementalStore(store, simple_schema, layout)


def make_batch(simple_schema, rng, n=500):
    return Table(
        simple_schema,
        {
            "x": rng.uniform(0.0, 100.0, size=n),
            "y": rng.integers(0, 50, size=n).astype(np.int64),
            "color": rng.integers(0, 3, size=n).astype(np.int32),
        },
    )


class TestIngest:
    def test_empty_batch_noop(self, incremental, simple_schema):
        empty = Table(
            simple_schema,
            {"x": np.empty(0), "y": np.empty(0), "color": np.empty(0, dtype=np.int32)},
        )
        assert incremental.ingest(empty) == 0
        assert incremental.num_partitions == 0

    def test_schema_mismatch_rejected(self, incremental):
        from repro.storage import ColumnSpec, Schema

        other = Table(Schema(columns=(ColumnSpec("z", "numeric"),)), {"z": np.zeros(3)})
        with pytest.raises(ValueError, match="schema"):
            incremental.ingest(other)

    def test_batches_accumulate(self, incremental, simple_schema, rng):
        for _ in range(3):
            incremental.ingest(make_batch(simple_schema, rng))
        assert incremental.total_rows == 1500
        assert incremental.batches_ingested == 3

    def test_partition_ids_globally_unique(self, incremental, simple_schema, rng):
        incremental.ingest(make_batch(simple_schema, rng))
        incremental.ingest(make_batch(simple_schema, rng))
        ids = [p.partition_id for p in incremental.stored().partitions]
        assert len(ids) == len(set(ids))

    def test_existing_partitions_untouched(self, incremental, simple_schema, rng):
        incremental.ingest(make_batch(simple_schema, rng))
        first_paths = {p.path: p.path.stat().st_mtime for p in incremental.stored().partitions}
        incremental.ingest(make_batch(simple_schema, rng))
        for path, mtime in first_paths.items():
            assert path.exists()
            assert path.stat().st_mtime == mtime

    def test_queries_see_all_batches(self, incremental, simple_schema, rng, store):
        batches = [make_batch(simple_schema, rng) for _ in range(3)]
        for batch in batches:
            incremental.ingest(batch)
        merged = Table.concat(batches)
        executor = QueryExecutor(store)
        query = Query(predicate=between("x", 10.0, 30.0))
        result = executor.execute(incremental.stored(), query)
        expected = int(query.predicate.evaluate(merged.columns).sum())
        assert result.rows_matched == expected

    def test_skipping_still_works_per_batch(self, incremental, simple_schema, rng, store):
        for _ in range(3):
            incremental.ingest(make_batch(simple_schema, rng))
        executor = QueryExecutor(store)
        result = executor.execute(
            incremental.stored(), Query(predicate=between("x", 10.0, 20.0))
        )
        # The layout ranges on x, so each batch contributes prunable parts.
        assert result.partitions_scanned < result.partitions_total


class TestFragmentation:
    def test_fresh_store(self, incremental):
        assert incremental.fragmentation(1000) == 1.0

    def test_grows_with_batches(self, incremental, simple_schema, rng):
        for _ in range(4):
            incremental.ingest(make_batch(simple_schema, rng))
        # 16 partitions for 2000 rows vs ideal 2 at 1000 rows/partition.
        assert incremental.fragmentation(1000) > 4.0


class TestConsolidate:
    def test_reduces_partition_count(self, incremental, simple_schema, rng):
        for _ in range(4):
            incremental.ingest(make_batch(simple_schema, rng))
        fragmented = incremental.num_partitions
        new_layout = RangeLayoutBuilder("x").build(
            make_batch(simple_schema, rng, 2000), [], 4, rng
        )
        incremental.consolidate(new_layout)
        assert incremental.num_partitions <= 4 < fragmented

    def test_preserves_rows(self, incremental, simple_schema, rng, store):
        batches = [make_batch(simple_schema, rng) for _ in range(3)]
        for batch in batches:
            incremental.ingest(batch)
        new_layout = RangeLayoutBuilder("y").build(batches[0], [], 4, rng)
        result = incremental.consolidate(new_layout)
        assert result.rows_moved == 1500
        assert incremental.total_rows == 1500
        merged = Table.concat(batches)
        restored = store.read_all(incremental.stored(), simple_schema)
        assert np.sort(restored["x"]).tolist() == pytest.approx(
            np.sort(merged["x"]).tolist()
        )

    def test_old_batch_files_removed(self, incremental, simple_schema, rng, store):
        incremental.ingest(make_batch(simple_schema, rng))
        old_paths = [p.path for p in incremental.stored().partitions]
        new_layout = RangeLayoutBuilder("x").build(
            make_batch(simple_schema, rng), [], 4, rng
        )
        incremental.consolidate(new_layout)
        assert not any(path.exists() for path in old_paths)

    def test_ingestion_continues_after_consolidation(
        self, incremental, simple_schema, rng
    ):
        incremental.ingest(make_batch(simple_schema, rng))
        new_layout = RangeLayoutBuilder("x").build(
            make_batch(simple_schema, rng), [], 4, rng
        )
        incremental.consolidate(new_layout)
        incremental.ingest(make_batch(simple_schema, rng))
        ids = [p.partition_id for p in incremental.stored().partitions]
        assert len(ids) == len(set(ids))
        assert incremental.total_rows == 1000


class FlakyStore(PartitionStore):
    """Fault-injection store: the ``fail_at``-th file write raises."""

    def __init__(self, root):
        super().__init__(root)
        self.writes = 0
        self.fail_at: int | None = None

    def write_partition_file(self, *args, **kwargs):
        self.writes += 1
        if self.fail_at is not None and self.writes == self.fail_at:
            self.fail_at = None
            raise OSError("injected: disk full")
        return super().write_partition_file(*args, **kwargs)


class TestIngestAtomicity:
    """A mid-batch write failure leaves the store exactly as it was."""

    def _disk_files(self, store):
        return sorted(p for p in store.root.rglob("*") if p.is_file())

    def test_mid_batch_failure_rolls_back_everything(
        self, tmp_path, simple_schema, simple_table, rng
    ):
        from repro.core import CostEvaluator
        from repro.layouts import compute_reorg_delta

        store = FlakyStore(tmp_path / "store")
        layout = RangeLayout("x", np.array([25.0, 50.0, 75.0]))
        evaluator = CostEvaluator(simple_table)
        incremental = IncrementalStore(
            store, simple_schema, layout, evaluator=evaluator
        )
        first = make_batch(simple_schema, rng)
        incremental.ingest(first)
        query = Query(predicate=between("x", 10.0, 40.0))
        price_before = evaluator.query_cost(layout, query)
        snapshot_before = incremental.stored()
        files_before = self._disk_files(store)
        next_id_before = incremental._next_partition_id

        # Fail on the 3rd file of the next batch: files 1-2 become orphans.
        store.fail_at = store.writes + 3
        doomed = make_batch(simple_schema, rng)
        with pytest.raises(OSError, match="injected"):
            incremental.ingest(doomed)

        # Bookkeeping is untouched: no half-ingested batch is visible.
        after = incremental.stored()
        assert after.metadata is snapshot_before.metadata
        assert after.partitions == snapshot_before.partitions
        assert incremental.batches_ingested == 1
        assert incremental.total_rows == 500
        assert incremental._next_partition_id == next_id_before
        # The orphaned files written before the failure were removed.
        assert self._disk_files(store) == files_before
        # The evaluator still prices the pre-failure snapshot.
        assert evaluator._metadata[layout.layout_id] is snapshot_before.metadata
        assert evaluator.query_cost(layout, query) == price_before

        # A retry of the same batch succeeds cleanly with contiguous ids.
        assert incremental.ingest(doomed) > 0
        assert incremental.total_rows == 1000
        assert incremental.batches_ingested == 2
        ids = [p.partition_id for p in incremental.stored().partitions]
        assert ids == sorted(ids) and len(ids) == len(set(ids))
        # The retry's delta carried every pre-failure partition verbatim.
        delta = compute_reorg_delta(
            snapshot_before.metadata, incremental.stored().metadata
        )
        assert len(delta.carried_new) == len(snapshot_before.metadata.partitions)
        # Every row of both batches is queryable.
        merged = Table.concat([first, doomed])
        result = QueryExecutor(store).execute(incremental.stored(), query)
        assert result.rows_matched == int(query.predicate.evaluate(merged.columns).sum())

    def test_failure_on_first_file_leaves_empty_store_empty(
        self, tmp_path, simple_schema, rng
    ):
        store = FlakyStore(tmp_path / "store")
        layout = RangeLayout("x", np.array([25.0, 50.0, 75.0]))
        incremental = IncrementalStore(store, simple_schema, layout)
        store.fail_at = 1
        with pytest.raises(OSError, match="injected"):
            incremental.ingest(make_batch(simple_schema, rng))
        assert incremental.num_partitions == 0
        assert incremental.total_rows == 0
        assert incremental.batches_ingested == 0
        assert incremental._next_partition_id == 0
        assert self._disk_files(store) == []


class TestEvaluatorSync:
    """An attached CostEvaluator prices the live materialized metadata and
    is revalidated surgically as batches append."""

    def _build(self, store, simple_schema, simple_table):
        from repro.core import CostEvaluator

        layout = RangeLayout("x", np.array([25.0, 50.0, 75.0]))
        evaluator = CostEvaluator(simple_table)
        incremental = IncrementalStore(
            store, simple_schema, layout, evaluator=evaluator
        )
        return incremental, evaluator, layout

    def test_prices_track_appends(self, store, simple_schema, simple_table, rng):
        incremental, evaluator, layout = self._build(store, simple_schema, simple_table)
        query = Query(predicate=between("x", 10.0, 40.0))
        assert evaluator.query_cost(layout, query) == 0.0  # nothing ingested yet
        incremental.ingest(make_batch(simple_schema, rng))
        key = query.cache_key()
        cached = evaluator._query_costs[layout.layout_id]
        # The cached entry was revalidated in place, not dropped...
        assert key in cached
        # ...and matches the scalar oracle on the *materialized* metadata.
        expected = incremental.stored().metadata.accessed_fraction(query.predicate)
        assert cached[key] == expected
        assert evaluator.query_cost(layout, query) == expected
        incremental.ingest(make_batch(simple_schema, rng, n=200))
        expected = incremental.stored().metadata.accessed_fraction(query.predicate)
        assert cached[key] == expected

    def test_append_delta_touches_only_new_partitions(
        self, store, simple_schema, simple_table, rng
    ):
        from repro.layouts import compute_reorg_delta

        incremental, evaluator, layout = self._build(store, simple_schema, simple_table)
        incremental.ingest(make_batch(simple_schema, rng))
        before = incremental.stored().metadata
        incremental.ingest(make_batch(simple_schema, rng, n=100))
        after = incremental.stored().metadata
        delta = compute_reorg_delta(before, after)
        assert len(delta.carried_new) == len(before.partitions)
        assert len(delta.changed) == len(after.partitions) - len(before.partitions)

    def test_consolidate_reregisters_new_layout(
        self, store, simple_schema, simple_table, rng
    ):
        incremental, evaluator, layout = self._build(store, simple_schema, simple_table)
        incremental.ingest(make_batch(simple_schema, rng))
        query = Query(predicate=between("x", 0.0, 30.0))
        evaluator.query_cost(layout, query)
        new_layout = RangeLayoutBuilder("x").build(
            make_batch(simple_schema, rng), [], 4, rng
        )
        incremental.consolidate(new_layout)
        assert layout.layout_id not in evaluator._metadata  # forgotten
        registered = evaluator._metadata[new_layout.layout_id]
        assert registered is incremental.stored().metadata
        expected = registered.accessed_fraction(query.predicate)
        assert evaluator.query_cost(new_layout, query) == expected
