"""Tests for the pipelined reorganization (bounded movement steps)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.layouts import RangeLayoutBuilder, RoundRobinLayout
from repro.storage import (
    AsyncReorgPipeline,
    PartitionStore,
    QueryExecutor,
    reorganize,
)


@pytest.fixture
def store(tmp_path):
    return PartitionStore(tmp_path / "store")


@pytest.fixture
def target(simple_table, rng):
    return RangeLayoutBuilder("x").build(simple_table, [], 6, rng)


def run_pipeline(pipeline):
    steps = []
    while not pipeline.done:
        steps.append(pipeline.step())
    return steps


class TestDoubleBuffering:
    def test_staged_files_invisible_until_commit(self, store, simple_table):
        staging = store.begin_staging("lay")
        assert staging.exists()
        store.write_partition_file(simple_table, np.arange(10), 0, staging)
        assert not (store.root / "lay").exists()
        live = store.commit_staging("lay")
        assert live.exists()
        assert not staging.exists()
        assert (live / "part-00000.npz").exists()

    def test_begin_staging_resets_stale_buffer(self, store, simple_table):
        staging = store.begin_staging("lay")
        store.write_partition_file(simple_table, np.arange(10), 0, staging)
        staging = store.begin_staging("lay")
        assert list(staging.glob("*.npz")) == []

    def test_commit_staging_replaces_live_directory(self, store, simple_table):
        layout = RoundRobinLayout(4)
        stored = store.materialize(simple_table, layout)
        staging = store.begin_staging(layout.layout_id)
        store.write_partition_file(simple_table, np.arange(5), 0, staging)
        live = store.commit_staging(layout.layout_id)
        assert sorted(f.name for f in live.glob("*.npz")) == ["part-00000.npz"]
        assert not any(p.path.exists() for p in stored.partitions[1:])

    def test_commit_without_staging_raises(self, store):
        with pytest.raises(FileNotFoundError):
            store.commit_staging("nothing-staged")

    def test_commit_staging_leaves_no_retired_residue(self, store, simple_table):
        # The flip parks the old live directory at <id>.retired between the
        # two renames (so a complete copy always exists on disk) and must
        # clean it up afterwards — including a stale one from a crash.
        layout = RoundRobinLayout(4)
        store.materialize(simple_table, layout)
        stale = store.root / f"{layout.layout_id}.retired"
        stale.mkdir()
        (stale / "leftover.npz").write_bytes(b"x")
        staging = store.begin_staging(layout.layout_id)
        store.write_partition_file(simple_table, np.arange(5), 0, staging)
        live = store.commit_staging(layout.layout_id)
        assert not stale.exists()
        assert sorted(f.name for f in live.glob("*.npz")) == ["part-00000.npz"]

    def test_abort_staging_discards_buffer(self, store, simple_table):
        staging = store.begin_staging("lay")
        store.write_partition_file(simple_table, np.arange(10), 0, staging)
        store.abort_staging("lay")
        assert not staging.exists()
        assert not (store.root / "lay").exists()

    def test_epoch_stamp_round_trips(self, store, simple_table, tmp_path):
        written = store.write_partition_file(
            simple_table, np.arange(10), 3, tmp_path / "d", epoch=7
        )
        assert written.epoch == 7


class TestPipelinePhases:
    def test_phase_progression_and_bounded_steps(self, store, simple_table, target):
        stored = store.materialize(simple_table, RoundRobinLayout(5))
        pipeline = AsyncReorgPipeline(
            store, stored, target, simple_table.schema, step_partitions=2
        )
        steps = run_pipeline(pipeline)
        kinds = [s.kind for s in steps]
        assert kinds[: kinds.index("assign")] == ["read"] * kinds.index("assign")
        assert kinds.count("assign") == 1
        assert kinds[-1] == "commit"
        for step in steps:
            if step.kind in ("read", "write"):
                assert 1 <= step.partitions_touched <= 2

    def test_epochs_monotonic_and_stamped(self, store, simple_table, target):
        stored = store.materialize(simple_table, RoundRobinLayout(5))
        pipeline = AsyncReorgPipeline(
            store, stored, target, simple_table.schema, step_partitions=2
        )
        steps = run_pipeline(pipeline)
        assert [s.epoch for s in steps] == list(range(1, len(steps) + 1))
        new_stored, _ = pipeline.result
        write_epochs = {s.epoch for s in steps if s.kind == "write"}
        assert {p.epoch for p in new_stored.partitions} == write_epochs

    def test_visible_snapshot_is_old_until_commit(self, store, simple_table, target):
        stored = store.materialize(simple_table, RoundRobinLayout(5))
        pipeline = AsyncReorgPipeline(
            store, stored, target, simple_table.schema, step_partitions=2
        )
        while not pipeline.done:
            assert pipeline.visible is stored
            # every old file stays readable for the whole pipeline
            assert all(p.path.exists() for p in stored.partitions)
            pipeline.step()
        assert pipeline.visible is pipeline.result[0]

    def test_old_snapshot_queryable_mid_flight(self, store, simple_table, target):
        from repro.queries import Query, between

        stored = store.materialize(simple_table, RoundRobinLayout(5))
        executor = QueryExecutor(store)
        query = Query(predicate=between("x", 10.0, 30.0))
        expected = executor.execute(stored, query).rows_matched
        pipeline = AsyncReorgPipeline(
            store, stored, target, simple_table.schema, step_partitions=2
        )
        while not pipeline.done:
            assert executor.execute(pipeline.visible, query).rows_matched == expected
            pipeline.step()

    def test_step_after_done_raises(self, store, simple_table, target):
        stored = store.materialize(simple_table, RoundRobinLayout(3))
        pipeline = AsyncReorgPipeline(store, stored, target, simple_table.schema)
        pipeline.run_to_completion()
        with pytest.raises(RuntimeError):
            pipeline.step()

    def test_result_before_commit_raises(self, store, simple_table, target):
        stored = store.materialize(simple_table, RoundRobinLayout(3))
        pipeline = AsyncReorgPipeline(store, stored, target, simple_table.schema)
        with pytest.raises(RuntimeError):
            pipeline.result

    def test_completed_fraction_monotone(self, store, simple_table, target):
        stored = store.materialize(simple_table, RoundRobinLayout(5))
        pipeline = AsyncReorgPipeline(
            store, stored, target, simple_table.schema, step_partitions=1
        )
        fractions = [s.completed_fraction for s in run_pipeline(pipeline)]
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0

    def test_invalid_step_partitions(self, store, simple_table, target):
        stored = store.materialize(simple_table, RoundRobinLayout(3))
        with pytest.raises(ValueError):
            AsyncReorgPipeline(
                store, stored, target, simple_table.schema, step_partitions=0
            )


class TestPipelineEquivalence:
    @pytest.mark.parametrize("mover_threads", [1, 4])
    def test_matches_synchronous_reorganize(
        self, store, simple_table, target, tmp_path, mover_threads
    ):
        sync_store = PartitionStore(tmp_path / "sync")
        sync_stored = sync_store.materialize(simple_table, RoundRobinLayout(5))
        sync_new, sync_result = reorganize(
            sync_store, sync_stored, target, simple_table.schema
        )

        stored = store.materialize(simple_table, RoundRobinLayout(5))
        pipeline = AsyncReorgPipeline(
            store,
            stored,
            target,
            simple_table.schema,
            step_partitions=2,
            mover_threads=mover_threads,
        )
        new_stored, result = pipeline.run_to_completion()

        assert new_stored.metadata == sync_new.metadata
        assert [
            (p.partition_id, p.row_count, p.byte_size) for p in new_stored.partitions
        ] == [(p.partition_id, p.row_count, p.byte_size) for p in sync_new.partitions]
        for ours, theirs in zip(new_stored.partitions, sync_new.partitions, strict=True):
            assert ours.path.read_bytes() == theirs.path.read_bytes()
        assert result.bytes_read == sync_result.bytes_read
        assert result.bytes_written == sync_result.bytes_written
        assert result.rows_moved == sync_result.rows_moved
        assert result.partitions_written == sync_result.partitions_written
        assert result.delta is not None
        assert result.delta.changed == sync_result.delta.changed
        np.testing.assert_array_equal(
            result.delta.carried_new, sync_result.delta.carried_new
        )

    def test_old_layout_deleted_after_commit(self, store, simple_table, target):
        stored = store.materialize(simple_table, RoundRobinLayout(5))
        old_paths = [p.path for p in stored.partitions]
        AsyncReorgPipeline(
            store, stored, target, simple_table.schema
        ).run_to_completion()
        assert not any(path.exists() for path in old_paths)

    def test_keep_old_retains_files(self, store, simple_table, target):
        stored = store.materialize(simple_table, RoundRobinLayout(5))
        AsyncReorgPipeline(
            store, stored, target, simple_table.schema, keep_old=True
        ).run_to_completion()
        assert all(p.path.exists() for p in stored.partitions)

    def test_same_layout_id_double_buffers(self, store, simple_table, rng):
        # Re-materializing under the same id must keep the old files
        # readable until the flip (the sync path destroys them up front).
        layout = RangeLayoutBuilder("x").build(simple_table, [], 6, rng)
        stored = store.materialize(simple_table, layout)
        pipeline = AsyncReorgPipeline(
            store, stored, layout, simple_table.schema, step_partitions=2
        )
        while not pipeline.done:
            assert all(p.path.exists() for p in stored.partitions)
            pipeline.step()
        new_stored, result = pipeline.result
        assert all(p.path.exists() for p in new_stored.partitions)
        assert result.delta is not None and result.delta.changed == ()

    def test_row_multiset_preserved(self, store, simple_table, target):
        stored = store.materialize(simple_table, RoundRobinLayout(5))
        pipeline = AsyncReorgPipeline(store, stored, target, simple_table.schema)
        new_stored, _ = pipeline.run_to_completion()
        restored = store.read_all(new_stored, simple_table.schema)
        assert np.sort(restored["x"]).tolist() == np.sort(simple_table["x"]).tolist()

    def test_mover_threads_must_be_positive(self, store, simple_table, target):
        stored = store.materialize(simple_table, RoundRobinLayout(3))
        with pytest.raises(ValueError, match="mover_threads"):
            AsyncReorgPipeline(
                store, stored, target, simple_table.schema, mover_threads=0
            )

    def test_elapsed_covers_all_steps(self, store, simple_table, target):
        stored = store.materialize(simple_table, RoundRobinLayout(5))
        pipeline = AsyncReorgPipeline(
            store, stored, target, simple_table.schema, step_partitions=2
        )
        steps = run_pipeline(pipeline)
        _, result = pipeline.result
        assert result.elapsed_seconds == pytest.approx(
            sum(s.elapsed_seconds for s in steps)
        )


class TestEmptyStore:
    """A pipeline over a zero-partition snapshot is a clean no-op."""

    def _empty_stored(self):
        from repro.layouts import LayoutMetadata
        from repro.storage import StoredLayout

        return StoredLayout(
            layout=RoundRobinLayout(3),
            metadata=LayoutMetadata(partitions=()),
            partitions=(),
        )

    def test_pipeline_commits_empty_snapshot(self, store, simple_table, target):
        pipeline = AsyncReorgPipeline(
            store, self._empty_stored(), target, simple_table.schema
        )
        steps = run_pipeline(pipeline)
        # Nothing to read or write: one empty read step, then assign+commit.
        assert [s.kind for s in steps] == ["read", "assign", "commit"]
        assert steps[0].partitions_touched == 0
        new_stored, result = pipeline.result
        assert new_stored.partitions == ()
        assert new_stored.metadata.partitions == ()
        assert result.rows_moved == 0
        assert result.partitions_written == 0
        assert result.bytes_read == 0
        assert result.bytes_written == 0

    def test_matches_synchronous_reorganize_on_empty(
        self, store, simple_table, target, tmp_path
    ):
        sync_store = PartitionStore(tmp_path / "sync")
        sync_new, sync_result = reorganize(
            sync_store, self._empty_stored(), target, simple_table.schema
        )
        pipeline = AsyncReorgPipeline(
            store, self._empty_stored(), target, simple_table.schema
        )
        new_stored, result = pipeline.run_to_completion()
        assert new_stored.metadata == sync_new.metadata
        assert new_stored.partitions == sync_new.partitions == ()
        assert result.rows_moved == sync_result.rows_moved == 0


class TestPartialCommits:
    def test_partial_commits_are_append_only(self, store, simple_table, target):
        stored = store.materialize(simple_table, RoundRobinLayout(5))
        pipeline = AsyncReorgPipeline(
            store, stored, target, simple_table.schema, step_partitions=2
        )
        partials = [s.partial for s in run_pipeline(pipeline) if s.partial is not None]
        assert partials, "write steps must publish partial commits"
        previous_count = 0
        previous_metadata = None
        for partial in partials:
            count = len(partial.stored.partitions)
            assert count > previous_count
            delta = partial.delta
            # the chain threads metadata objects: each delta's old snapshot
            # is exactly the previous partial's new snapshot
            if previous_metadata is not None:
                assert delta.old_metadata is previous_metadata
            assert delta.new_metadata is partial.stored.metadata
            # append-only: every pre-existing partition carried verbatim
            assert len(delta.carried_new) == previous_count
            assert len(delta.changed) == count - previous_count
            previous_count = count
            previous_metadata = partial.stored.metadata

    def test_final_snapshot_is_last_partial(self, store, simple_table, target):
        stored = store.materialize(simple_table, RoundRobinLayout(5))
        pipeline = AsyncReorgPipeline(
            store, stored, target, simple_table.schema, step_partitions=2
        )
        partials = [s.partial for s in run_pipeline(pipeline) if s.partial is not None]
        new_stored, _ = pipeline.result
        assert new_stored.metadata is partials[-1].stored.metadata
