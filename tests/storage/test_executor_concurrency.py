"""Concurrent-caller stress tests for the executor's LRU caches.

Regression suite for the unlocked ``_zonemaps``/``_compiled`` caches:
``lru_get`` pops and reinserts on every hit, so two concurrent
``query_batch`` calls on one executor could interleave mid-refresh and
drop or duplicate entries — or double-compile and publish whichever
index finished last.  With ``_cache_lock`` every access serializes;
these tests hammer one executor from many threads across more layouts
than the cache holds (forcing eviction churn) and assert results stay
bit-identical to the single-threaded baseline and the caches stay
bounded and well-formed.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.layouts import RangeLayoutBuilder, RoundRobinLayout
from repro.queries import Query, between
from repro.storage import PartitionStore, QueryExecutor


@pytest.fixture
def executor(tmp_path):
    return QueryExecutor(PartitionStore(tmp_path / "store"))


@pytest.fixture
def stored_layouts(executor, simple_table, rng):
    """More stored layouts than ZONEMAP_CACHE_CAP, so hits evict under load."""
    count = QueryExecutor.ZONEMAP_CACHE_CAP + 4
    stored = []
    for i in range(count):
        if i % 2:
            layout = RoundRobinLayout(4 + i % 3, layout_id=f"rr-{i}")
        else:
            layout = RangeLayoutBuilder("x").build(simple_table, [], 4 + i % 5, rng)
        stored.append(executor.store.materialize(simple_table, layout))
    return stored


@pytest.fixture
def batches():
    """Distinct query batches (distinct compiled-workload cache keys)."""
    return [
        [
            Query(predicate=between("x", float(10 * j), float(10 * j + 5 + i)))
            for j in range(3)
        ]
        for i in range(8)
    ]


def test_concurrent_query_batch_matches_serial(executor, stored_layouts, batches):
    expected = {
        (si, bi): [r.rows_matched for r in executor.execute_batch(stored, batch)]
        for si, stored in enumerate(stored_layouts)
        for bi, batch in enumerate(batches)
    }
    start = threading.Barrier(8)
    failures: list[str] = []

    def hammer(seed: int) -> None:
        order = np.random.default_rng(seed)
        start.wait()
        for _ in range(12):
            si = int(order.integers(len(stored_layouts)))
            bi = int(order.integers(len(batches)))
            got = [
                r.rows_matched
                for r in executor.execute_batch(stored_layouts[si], batches[bi])
            ]
            if got != expected[(si, bi)]:
                failures.append(f"layout {si} batch {bi}: {got}")

    with ThreadPoolExecutor(max_workers=8) as pool:
        list(pool.map(hammer, range(8)))
    assert not failures


def test_caches_stay_bounded_and_consistent_under_races(
    executor, stored_layouts, batches
):
    start = threading.Barrier(6)

    def hammer(seed: int) -> None:
        order = np.random.default_rng(1000 + seed)
        start.wait()
        for _ in range(20):
            stored = stored_layouts[int(order.integers(len(stored_layouts)))]
            if order.integers(4) == 0:
                # interleave retirement with serving, like apply_reorg does
                executor.forget(stored.layout.layout_id)
            else:
                executor.execute_batch(
                    stored, batches[int(order.integers(len(batches)))]
                )

    with ThreadPoolExecutor(max_workers=6) as pool:
        list(pool.map(hammer, range(6)))
    # bounded: racing pop-and-reinsert used to let the dicts drift past cap
    assert len(executor._zonemaps) <= QueryExecutor.ZONEMAP_CACHE_CAP
    assert len(executor._compiled) <= QueryExecutor.COMPILED_CACHE_CAP
    # consistent: every surviving entry is keyed by the index it stores
    by_id = {stored.layout.layout_id: stored for stored in stored_layouts}
    for layout_id, index in executor._zonemaps.items():
        assert index.metadata is by_id[layout_id].metadata


def test_concurrent_single_execute_matches_serial(executor, stored_layouts):
    query = Query(predicate=between("x", 25.0, 60.0))
    expected = [executor.execute(s, query).rows_matched for s in stored_layouts]
    results: dict[int, list[int]] = {}
    start = threading.Barrier(4)

    def hammer(tag: int) -> None:
        start.wait()
        results[tag] = [executor.execute(s, query).rows_matched for s in stored_layouts]

    threads = [threading.Thread(target=hammer, args=(t,)) for t in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert all(results[tag] == expected for tag in results)
