"""Tests for segmented workload generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.queries import between
from repro.workloads import generate_stream, segment_lengths
from repro.workloads.templates import QueryTemplate


def toy_templates(n=4):
    return tuple(
        QueryTemplate(f"t{i}", lambda rng, i=i: between("x", float(i), float(i + 1)))
        for i in range(n)
    )


class TestSegmentLengths:
    def test_sum_equals_total(self, rng):
        lengths = segment_lengths(1000, 7, rng)
        assert sum(lengths) == 1000
        assert len(lengths) == 7

    def test_min_length_respected(self, rng):
        lengths = segment_lengths(100, 10, rng, min_segment_length=5)
        assert all(length >= 5 for length in lengths)
        assert sum(lengths) == 100

    def test_single_segment(self, rng):
        assert segment_lengths(50, 1, rng) == [50]

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            segment_lengths(10, 0, rng)
        with pytest.raises(ValueError):
            segment_lengths(5, 10, rng, min_segment_length=1)

    def test_lengths_vary(self, rng):
        lengths = segment_lengths(10_000, 10, rng)
        assert len(set(lengths)) > 1  # "arbitrary amount of time"


class TestGenerateStream:
    def test_stream_size(self, rng):
        stream = generate_stream(toy_templates(), 500, 6, rng)
        assert len(stream) == 500

    def test_segment_annotations(self, rng):
        stream = generate_stream(toy_templates(), 500, 6, rng)
        assert len(stream.segments) == 6
        assert stream.segments[0][0] == 0
        starts = [start for start, _ in stream.segments]
        assert starts == sorted(starts)

    def test_queries_match_segment_template(self, rng):
        stream = generate_stream(toy_templates(), 300, 5, rng)
        for index, query in enumerate(stream):
            assert query.template == stream.segment_of(index)

    def test_no_consecutive_duplicate_templates(self, rng):
        stream = generate_stream(toy_templates(), 1000, 12, rng)
        names = [name for _, name in stream.segments]
        for previous, current in zip(names, names[1:], strict=False):
            assert previous != current

    def test_single_template_allowed(self, rng):
        (template,) = toy_templates(1)
        stream = generate_stream([template], 100, 3, rng)
        assert all(q.template == "t0" for q in stream)

    def test_timestamps_increase(self, rng):
        stream = generate_stream(toy_templates(), 100, 4, rng)
        times = [q.timestamp for q in stream]
        assert times == sorted(times)

    def test_empty_templates_rejected(self, rng):
        with pytest.raises(ValueError):
            generate_stream([], 100, 4, rng)

    def test_deterministic_given_seed(self):
        streams = []
        for _ in range(2):
            stream = generate_stream(
                toy_templates(), 200, 5, np.random.default_rng(42)
            )
            streams.append([(q.template, q.predicate.cache_key()) for q in stream])
        assert streams[0] == streams[1]


class TestQueryTemplate:
    def test_instantiate_sets_metadata(self, rng):
        template = toy_templates(1)[0]
        query = template.instantiate(rng, timestamp=5.0)
        assert query.template == "t0"
        assert query.timestamp == 5.0

    def test_sample_batch(self, rng):
        template = toy_templates(1)[0]
        batch = template.sample_batch(10, rng, start_timestamp=100.0)
        assert len(batch) == 10
        assert batch[0].timestamp == 100.0
        assert batch[9].timestamp == 109.0
