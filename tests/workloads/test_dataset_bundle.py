"""Tests for the DatasetBundle contract and the zipf helper."""

from __future__ import annotations

import numpy as np
import pytest

from repro.queries import between
from repro.storage import ColumnSpec, Schema, Table
from repro.workloads.dataset import DatasetBundle, zipf_codes
from repro.workloads.templates import QueryTemplate


def make_bundle(rng):
    schema = Schema(columns=(ColumnSpec("t", "numeric"),))
    table = Table(schema, {"t": rng.uniform(0, 10, 200)})
    template = QueryTemplate("win", lambda rng: between("t", 1.0, 2.0))
    return DatasetBundle(
        name="mini", table=table, templates=(template,), default_sort_column="t"
    )


class TestZipfCodes:
    def test_domain(self, rng):
        codes = zipf_codes(5_000, 10, rng)
        assert codes.min() >= 0
        assert codes.max() < 10

    def test_heavy_head(self, rng):
        codes = zipf_codes(20_000, 20, rng, exponent=1.2)
        counts = np.bincount(codes, minlength=20)
        assert counts[0] > counts[10] > 0

    def test_exponent_controls_skew(self, rng):
        flat = zipf_codes(20_000, 10, np.random.default_rng(1), exponent=0.1)
        steep = zipf_codes(20_000, 10, np.random.default_rng(1), exponent=2.0)
        flat_share = np.mean(flat == 0)
        steep_share = np.mean(steep == 0)
        assert steep_share > flat_share

    def test_cardinality_validation(self, rng):
        with pytest.raises(ValueError):
            zipf_codes(10, 0, rng)

    def test_dtype(self, rng):
        assert zipf_codes(10, 3, rng).dtype == np.int32


class TestDatasetBundle:
    def test_workload_respects_min_segment_length(self, rng):
        bundle = make_bundle(rng)
        stream = bundle.workload(100, 4, rng, min_segment_length=10)
        starts = [start for start, _ in stream.segments] + [100]
        lengths = np.diff(starts)
        assert all(length >= 10 for length in lengths)

    def test_workload_single_template(self, rng):
        bundle = make_bundle(rng)
        stream = bundle.workload(30, 3, rng)
        assert all(q.template == "win" for q in stream)

    def test_template_lookup_error(self, rng):
        bundle = make_bundle(rng)
        with pytest.raises(KeyError, match="no template"):
            bundle.template_by_name("missing")
