"""Tests for the three synthetic evaluation datasets.

Each dataset must satisfy the same contract: a schema-consistent table,
templates whose queries (a) evaluate without errors, (b) reference only
schema columns, (c) are selective (they don't match everything), and a
default sort column suitable for the initial range layout.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads import telemetry, tpcds, tpch

MODULES = {"tpch": tpch, "tpcds": tpcds, "telemetry": telemetry}
EXPECTED_TEMPLATE_COUNTS = {"tpch": 13, "tpcds": 17, "telemetry": 10}


@pytest.fixture(scope="module")
def bundles():
    return {
        name: module.load(5_000, np.random.default_rng(7))
        for name, module in MODULES.items()
    }


@pytest.mark.parametrize("name", list(MODULES))
class TestDatasetContract:
    def test_row_count(self, bundles, name):
        assert bundles[name].table.num_rows == 5_000

    def test_template_count_matches_paper(self, bundles, name):
        assert len(bundles[name].templates) == EXPECTED_TEMPLATE_COUNTS[name]

    def test_sort_column_in_schema(self, bundles, name):
        bundle = bundles[name]
        assert bundle.default_sort_column in bundle.table.schema

    def test_templates_reference_schema_columns(self, bundles, name):
        bundle = bundles[name]
        rng = np.random.default_rng(0)
        names = set(bundle.table.schema.names())
        for template in bundle.templates:
            for _ in range(5):
                query = template.instantiate(rng)
                assert query.columns() <= names, template.name

    def test_template_queries_evaluate(self, bundles, name):
        bundle = bundles[name]
        rng = np.random.default_rng(1)
        for template in bundle.templates:
            query = template.instantiate(rng)
            mask = query.evaluate(bundle.table.columns)
            assert mask.dtype == bool
            assert len(mask) == bundle.table.num_rows

    def test_templates_are_selective_on_average(self, bundles, name):
        """Queries should usually match a strict subset of rows."""
        bundle = bundles[name]
        rng = np.random.default_rng(2)
        selectivities = []
        for template in bundle.templates:
            for _ in range(5):
                query = template.instantiate(rng)
                selectivities.append(query.evaluate(bundle.table.columns).mean())
        assert np.mean(selectivities) < 0.5

    def test_some_queries_match_rows(self, bundles, name):
        bundle = bundles[name]
        rng = np.random.default_rng(3)
        matched = 0
        for template in bundle.templates:
            for _ in range(5):
                query = template.instantiate(rng)
                if query.evaluate(bundle.table.columns).any():
                    matched += 1
        assert matched >= len(bundle.templates)  # most draws hit something

    def test_workload_generation(self, bundles, name):
        stream = bundles[name].workload(300, 5, np.random.default_rng(4))
        assert len(stream) == 300
        assert len(stream.segments) == 5

    def test_template_lookup(self, bundles, name):
        bundle = bundles[name]
        first = bundle.templates[0]
        assert bundle.template_by_name(first.name) is first
        with pytest.raises(KeyError):
            bundle.template_by_name("nope")


class TestTpchSpecifics:
    def test_date_ordering_invariants(self, bundles):
        table = bundles["tpch"].table
        assert (table["o_orderdate"] <= table["l_shipdate"]).all()
        assert (table["l_shipdate"] <= table["l_receiptdate"]).all()

    def test_date_domain(self, bundles):
        table = bundles["tpch"].table
        assert table["l_shipdate"].min() >= tpch.DATE_MIN
        assert table["l_receiptdate"].max() <= tpch.DATE_MAX

    def test_extendedprice_correlates_with_quantity(self, bundles):
        table = bundles["tpch"].table
        correlation = np.corrcoef(table["l_quantity"], table["l_extendedprice"])[0, 1]
        assert correlation > 0.5

    def test_excluded_templates_absent(self, bundles):
        names = {t.name for t in bundles["tpch"].templates}
        assert "tpch-q9" not in names
        assert "tpch-q18" not in names


class TestTpcdsSpecifics:
    def test_derived_date_columns_consistent(self, bundles):
        table = bundles["tpcds"].table
        assert ((table["d_year"] - 1998) == table["ss_sold_date"] // 365).all()
        assert (table["d_moy"] >= 1).all() and (table["d_moy"] <= 12).all()
        assert (table["d_dow"] >= 0).all() and (table["d_dow"] <= 6).all()

    def test_price_chain(self, bundles):
        table = bundles["tpcds"].table
        assert (table["ss_sales_price"] <= table["ss_list_price"] + 1e-9).all()
        assert (table["ss_wholesale_cost"] <= table["ss_list_price"] + 1e-9).all()


class TestTelemetrySpecifics:
    def test_arrival_skewed_recent(self, bundles):
        table = bundles["telemetry"].table
        midpoint = (telemetry.TIME_MIN + telemetry.TIME_MAX) / 2
        assert (table["arrival_time"] > midpoint).mean() > 0.5

    def test_collector_heavy_tailed(self, bundles):
        table = bundles["telemetry"].table
        counts = np.bincount(table["collector"])
        assert counts.max() > 5 * max(counts[counts > 0].min(), 1)

    def test_error_codes_only_on_failures(self, bundles):
        table = bundles["telemetry"].table
        schema = table.schema
        failed = schema["status"].encode("FAILED")
        errors = table["error_code"]
        assert (errors[table["status"] != failed] == 0).all()
        assert (errors[table["status"] == failed] > 0).all()
