"""Tests for workload samplers: window, reservoir, time-biased reservoir."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.workloads import ReservoirSample, SlidingWindow, TimeBiasedReservoir


class TestSlidingWindow:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SlidingWindow(0)

    def test_keeps_most_recent(self):
        window = SlidingWindow(3)
        for i in range(10):
            window.add(i)
        assert window.snapshot() == [7, 8, 9]
        assert len(window) == 3

    def test_below_capacity(self):
        window = SlidingWindow(5)
        window.add("a")
        assert window.snapshot() == ["a"]
        assert len(window) == 1

    def test_order_preserved(self):
        window = SlidingWindow(4)
        for item in "abcd":
            window.add(item)
        assert window.snapshot() == ["a", "b", "c", "d"]


class TestReservoirSample:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ReservoirSample(0, np.random.default_rng(0))

    def test_fills_to_capacity(self):
        reservoir = ReservoirSample(5, np.random.default_rng(0))
        for i in range(3):
            reservoir.add(i)
        assert sorted(reservoir.snapshot()) == [0, 1, 2]

    def test_never_exceeds_capacity(self):
        reservoir = ReservoirSample(5, np.random.default_rng(0))
        for i in range(100):
            reservoir.add(i)
            assert len(reservoir) <= 5

    def test_items_seen_counter(self):
        reservoir = ReservoirSample(2, np.random.default_rng(0))
        for i in range(7):
            reservoir.add(i)
        assert reservoir.items_seen == 7

    def test_approximately_uniform_inclusion(self):
        """Every item should appear with probability ~k/n over many runs."""
        n, k, runs = 40, 8, 600
        counts = Counter()
        for seed in range(runs):
            reservoir = ReservoirSample(k, np.random.default_rng(seed))
            for i in range(n):
                reservoir.add(i)
            counts.update(reservoir.snapshot())
        expected = runs * k / n  # = 120
        for i in range(n):
            assert 0.6 * expected < counts[i] < 1.5 * expected

    def test_old_and_new_items_both_survive(self):
        reservoir = ReservoirSample(10, np.random.default_rng(3))
        for i in range(1000):
            reservoir.add(i)
        sample = reservoir.snapshot()
        assert any(item < 500 for item in sample)
        assert any(item >= 500 for item in sample)


class TestTimeBiasedReservoir:
    def test_validation(self):
        with pytest.raises(ValueError):
            TimeBiasedReservoir(0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            TimeBiasedReservoir(5, np.random.default_rng(0), time_constant=0)

    def test_fills_to_capacity(self):
        reservoir = TimeBiasedReservoir(5, np.random.default_rng(0))
        for i in range(3):
            reservoir.add(i)
        assert len(reservoir) == 3

    def test_never_exceeds_capacity(self):
        reservoir = TimeBiasedReservoir(5, np.random.default_rng(0))
        for i in range(200):
            reservoir.add(i)
            assert len(reservoir) <= 5

    def test_bias_toward_recent(self):
        """Mean sampled index must exceed the stream midpoint."""
        means = []
        for seed in range(30):
            reservoir = TimeBiasedReservoir(
                20, np.random.default_rng(seed), time_constant=200.0
            )
            for i in range(2000):
                reservoir.add(i)
            means.append(np.mean(reservoir.snapshot()))
        assert np.mean(means) > 1300  # uniform would give ~1000

    def test_retains_some_history(self):
        """Unlike a sliding window, old items keep nonzero probability."""
        hit_old = 0
        for seed in range(50):
            reservoir = TimeBiasedReservoir(
                20, np.random.default_rng(seed), time_constant=1000.0
            )
            for i in range(2000):
                reservoir.add(i)
            if any(item < 1000 for item in reservoir.snapshot()):
                hit_old += 1
        assert hit_old > 10

    def test_snapshot_ordered_by_arrival(self):
        reservoir = TimeBiasedReservoir(10, np.random.default_rng(0))
        for i in range(100):
            reservoir.add(i)
        sample = reservoir.snapshot()
        assert sample == sorted(sample)

    def test_explicit_timestamps(self):
        reservoir = TimeBiasedReservoir(
            4, np.random.default_rng(0), time_constant=10.0
        )
        # Items with huge timestamps should dominate the sample.
        for i in range(20):
            reservoir.add(f"old-{i}", timestamp=0.0)
        for i in range(4):
            reservoir.add(f"new-{i}", timestamp=10_000.0)
        sample = reservoir.snapshot()
        assert all(item.startswith("new") for item in sample)

    def test_numerically_stable_for_large_timestamps(self):
        reservoir = TimeBiasedReservoir(3, np.random.default_rng(0))
        reservoir.add("a", timestamp=1e12)
        reservoir.add("b", timestamp=1e12 + 1)
        assert len(reservoir) == 2
