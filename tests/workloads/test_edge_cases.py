"""Edge-case backfill for the workload generators (PR 9 satellite).

The dataset-contract suite exercises the happy path at 5,000 rows; these
tests pin the degenerate inputs a scenario runner can legitimately
produce: single-row tables, queries whose windows match nothing, streams
collapsed to one template or one segment, and zero-slack segment
compositions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.queries import between
from repro.workloads import (
    AdversarialPack,
    DriftingPredicatesPack,
    FlashCrowdPack,
    MultiTenantPack,
    generate_stream,
    segment_lengths,
    telemetry,
    tpcds,
)
from repro.workloads.templates import QueryTemplate

MODULES = {"telemetry": telemetry, "tpcds": tpcds}


@pytest.mark.parametrize("name", list(MODULES))
class TestTinyTables:
    def test_single_row_table_is_schema_complete(self, name):
        module = MODULES[name]
        table = module.make_table(1, np.random.default_rng(0))
        assert table.num_rows == 1
        assert table.schema == module.make_schema()

    def test_every_template_evaluates_on_a_single_row(self, name):
        module = MODULES[name]
        table = module.make_table(1, np.random.default_rng(1))
        rng = np.random.default_rng(2)
        for template in module.make_templates():
            mask = template.instantiate(rng).evaluate(table.columns)
            assert mask.shape == (1,) and mask.dtype == bool


@pytest.mark.parametrize("name", list(MODULES))
class TestEmptyWindows:
    def test_window_past_the_domain_matches_no_rows(self, name):
        module = MODULES[name]
        table = module.make_table(500, np.random.default_rng(3))
        time_column = "arrival_time" if name == "telemetry" else "ss_sold_date"
        domain_max = telemetry.TIME_MAX if name == "telemetry" else tpcds.DATE_MAX
        empty = between(time_column, domain_max + 10, domain_max + 20)
        assert not empty.evaluate(table.columns).any()

    def test_inverted_window_is_rejected_at_construction(self, name):
        time_column = "arrival_time" if name == "telemetry" else "ss_sold_date"
        with pytest.raises(ValueError, match="low"):
            between(time_column, 100.0, 50.0)


class TestStreamDegenerations:
    def test_zero_slack_composition_is_exactly_uniform(self):
        # num_queries == num_segments * min_segment_length: no spare rows
        # to distribute, every segment is pinned to the minimum.
        lengths = segment_lengths(40, 8, np.random.default_rng(5), min_segment_length=5)
        assert lengths == [5] * 8

    def test_single_template_single_segment_stream(self):
        template = QueryTemplate("only", lambda rng: between("x", 0.0, 1.0))
        stream = generate_stream([template], 25, 1, np.random.default_rng(6))
        assert len(stream) == 25
        assert stream.segments == ((0, "only"),)
        assert all(q.template == "only" for q in stream)

    def test_two_templates_never_stall_on_no_repeat_rule(self):
        # With 2 templates and many segments the no-consecutive-repeat
        # resampling loop must always terminate and strictly alternate.
        templates = [
            QueryTemplate(f"t{i}", lambda rng, i=i: between("x", float(i), i + 1.0))
            for i in range(2)
        ]
        stream = generate_stream(templates, 60, 12, np.random.default_rng(7))
        names = [name for _, name in stream.segments]
        assert all(a != b for a, b in zip(names, names[1:], strict=False))


class TestScenarioPackEdges:
    def test_phase_catalogue_dedupes_in_first_appearance_order(self):
        pack = FlashCrowdPack(seed=0, num_events=40, base_rows=300, phase_length=10)
        assert pack.phases() == ["steady", "burst0", "burst1"]

    def test_repr_round_trips_the_seed_contract(self):
        pack = DriftingPredicatesPack(seed=9, num_events=12, base_rows=300)
        text = repr(pack)
        assert "DriftingPredicatesPack" in text
        assert "seed=9" in text and "num_events=12" in text

    @pytest.mark.parametrize(
        ("cls", "kwargs"),
        [
            (FlashCrowdPack, dict(phase_length=0)),
            (FlashCrowdPack, dict(burst_purity=1.5)),
            (DriftingPredicatesPack, dict(drift_per_event=-1.0)),
            (DriftingPredicatesPack, dict(phase_length=0)),
            (MultiTenantPack, dict(num_tenants=0)),
            (MultiTenantPack, dict(hot_fraction=-0.1)),
            (AdversarialPack, dict(num_columns=0)),
            (AdversarialPack, dict(regime_length=0)),
            (AdversarialPack, dict(scan_width=0.0)),
        ],
    )
    def test_pack_specific_knobs_are_validated(self, cls, kwargs):
        with pytest.raises(ValueError):
            cls(seed=0, num_events=10, base_rows=300, **kwargs)
