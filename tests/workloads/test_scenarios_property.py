"""Property suite pinning the scenario-pack contract (satellite of PR 9).

Three properties are contractual for every pack:

* **seed determinism** — a pack is a pure function of its constructor
  arguments: two instances with identical arguments yield bit-identical
  event streams (queries compared structurally, batches compared
  array-for-array);
* **resumability** — ``events(start=k)`` equals the suffix of the full
  stream from ``k``, for any ``k``;
* **schema validity** — every emitted batch conforms to the pack's
  schema and every query evaluates against it (columns exist, masks are
  boolean, predicates are finite).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import (
    AdversarialPack,
    DriftingPredicatesPack,
    FlashCrowdPack,
    IngestEvent,
    MultiTenantPack,
    QueryEvent,
)

PACK_CLASSES = (
    FlashCrowdPack,
    DriftingPredicatesPack,
    MultiTenantPack,
    AdversarialPack,
)

pack_strategy = st.builds(
    lambda cls, seed, num_events, ingest_every: cls(
        seed=seed,
        num_events=num_events,
        base_rows=300,
        ingest_every=ingest_every,
        ingest_rows=40,
    ),
    st.sampled_from(PACK_CLASSES),
    st.integers(min_value=0, max_value=2**20),
    st.integers(min_value=1, max_value=40),
    st.integers(min_value=0, max_value=10),
)


def event_fingerprint(event):
    """Structural identity of one event (Query equality includes the
    process-global qid counter, so queries compare by cache_key)."""
    if isinstance(event, QueryEvent):
        return (
            "query",
            event.time,
            event.phase,
            event.query.template,
            event.query.timestamp,
            event.query.cache_key(),
        )
    assert isinstance(event, IngestEvent)
    return (
        "ingest",
        event.time,
        event.phase,
        tuple(
            (name, event.batch[name].tobytes())
            for name in event.batch.schema.names()
        ),
    )


@given(pack=pack_strategy)
@settings(max_examples=40)
def test_same_arguments_yield_identical_streams(pack):
    twin = type(pack)(
        seed=pack.seed,
        num_events=pack.num_events,
        base_rows=pack.base_rows,
        ingest_every=pack.ingest_every,
        ingest_rows=pack.ingest_rows,
    )
    ours = [event_fingerprint(e) for e in pack.events()]
    theirs = [event_fingerprint(e) for e in twin.events()]
    assert ours == theirs
    for name in pack.schema().names():
        assert np.array_equal(pack.base_table()[name], twin.base_table()[name])


@given(pack=pack_strategy, data=st.data())
@settings(max_examples=40)
def test_resuming_mid_stream_never_diverges(pack, data):
    start = data.draw(
        st.integers(min_value=0, max_value=pack.num_events), label="start"
    )
    full = [event_fingerprint(e) for e in pack.events()]
    resumed = [event_fingerprint(e) for e in pack.events(start=start)]
    assert resumed == full[start:]


@given(pack=pack_strategy)
@settings(max_examples=25)
def test_every_event_is_schema_valid(pack):
    schema = pack.schema()
    names = set(schema.names())
    base = pack.base_table()
    assert base.schema == schema
    for event in pack.events():
        if isinstance(event, IngestEvent):
            assert event.batch.schema == schema
            for name in schema.names():
                assert np.all(np.isfinite(event.batch[name]))
        else:
            assert event.query.columns() <= names
            mask = event.query.evaluate(base.columns)
            assert mask.dtype == bool and mask.shape == (base.num_rows,)


@given(
    pack=pack_strategy,
    other_seed=st.integers(min_value=0, max_value=2**20),
)
@settings(max_examples=15)
def test_different_seeds_change_the_stream(pack, other_seed):
    if other_seed == pack.seed:
        return
    other = type(pack)(
        seed=other_seed,
        num_events=pack.num_events,
        base_rows=pack.base_rows,
        ingest_every=pack.ingest_every,
        ingest_rows=pack.ingest_rows,
    )
    ours = [event_fingerprint(e) for e in pack.events()]
    theirs = [event_fingerprint(e) for e in other.events()]
    # Phase labels and cadence may coincide; the sampled content must not,
    # except for astronomically unlikely collisions on tiny streams.
    if ours == theirs:
        assert pack.num_events <= 2  # pragma: no cover - collision guard
