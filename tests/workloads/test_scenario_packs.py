"""Unit tests for the scenario packs: structure, phases, cadence, schemas."""

from __future__ import annotations

import numpy as np
import pytest

from repro.queries.predicates import Between, Comparison
from repro.workloads import (
    AdversarialPack,
    DriftingPredicatesPack,
    FlashCrowdPack,
    IngestEvent,
    MultiTenantPack,
    QueryEvent,
    default_packs,
)

TINY = dict(num_events=48, base_rows=600, ingest_rows=80)


def tiny_packs():
    return default_packs(seed=0, num_events=48, base_rows=600, ingest_rows=80)


class TestPackBasics:
    def test_default_packs_cover_all_four(self):
        packs = tiny_packs()
        assert [p.name for p in packs] == [
            "flash_crowd",
            "drifting",
            "multi_tenant",
            "adversarial",
        ]

    @pytest.mark.parametrize("pack", tiny_packs(), ids=lambda p: p.name)
    def test_stream_length_and_cadence(self, pack):
        events = list(pack.events())
        assert len(events) == pack.num_events
        queries = [e for e in events if isinstance(e, QueryEvent)]
        ingests = [e for e in events if isinstance(e, IngestEvent)]
        assert len(queries) == pack.num_queries()
        assert len(queries) + len(ingests) == pack.num_events
        for index, event in enumerate(events):
            assert event.time == float(index)
            assert isinstance(event, IngestEvent) == pack.is_ingest_event(index)
            assert event.phase == pack.phase_of(index)

    @pytest.mark.parametrize("pack", tiny_packs(), ids=lambda p: p.name)
    def test_batches_and_base_table_conform_to_schema(self, pack):
        schema = pack.schema()
        tables = [pack.base_table()]
        tables.extend(
            e.batch for e in pack.events() if isinstance(e, IngestEvent)
        )
        for table in tables:
            assert table.schema == schema
            assert table.num_rows > 0
            for name in schema.names():
                assert np.all(np.isfinite(table[name]))

    @pytest.mark.parametrize("pack", tiny_packs(), ids=lambda p: p.name)
    def test_queries_reference_schema_columns_and_evaluate(self, pack):
        base = pack.base_table()
        names = set(base.schema.names())
        for event in pack.events():
            if not isinstance(event, QueryEvent):
                continue
            assert event.query.columns() <= names
            mask = event.query.evaluate(base.columns)
            assert mask.shape == (base.num_rows,)
            assert mask.dtype == bool

    @pytest.mark.parametrize("pack", tiny_packs(), ids=lambda p: p.name)
    def test_candidate_layouts_have_stable_pack_scoped_ids(self, pack):
        table = pack.base_table()
        first = [c.layout_id for c in pack.candidate_layouts(table, 8)]
        second = [c.layout_id for c in pack.candidate_layouts(table, 8)]
        assert first == second
        assert len(set(first)) == len(first)
        assert all(i.startswith(pack.name) for i in first)

    @pytest.mark.parametrize("pack", tiny_packs(), ids=lambda p: p.name)
    def test_full_table_concatenates_base_and_batches(self, pack):
        ingested = sum(
            e.batch.num_rows for e in pack.events() if isinstance(e, IngestEvent)
        )
        assert pack.full_table().num_rows == pack.base_rows + ingested

    def test_ingest_can_be_disabled(self):
        pack = AdversarialPack(ingest_every=0, **TINY | {"num_events": 20})
        assert all(isinstance(e, QueryEvent) for e in pack.events())

    def test_events_start_bounds_are_validated(self):
        pack = FlashCrowdPack(**TINY)
        with pytest.raises(ValueError, match="start"):
            list(pack.events(start=-1))
        with pytest.raises(ValueError, match="start"):
            list(pack.events(start=pack.num_events + 1))
        assert list(pack.events(start=pack.num_events)) == []

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(seed=-1),
            dict(num_events=0),
            dict(base_rows=0),
            dict(ingest_every=-1),
            dict(ingest_rows=0),
        ],
    )
    def test_constructor_validation(self, kwargs):
        with pytest.raises(ValueError):
            FlashCrowdPack(**{**TINY, **kwargs})


class TestFlashCrowd:
    def test_phases_alternate_steady_and_burst(self):
        pack = FlashCrowdPack(phase_length=10, **TINY)
        assert pack.phase_of(0) == "steady"
        assert pack.phase_of(10) == "burst0"
        assert pack.phase_of(20) == "steady"
        assert pack.phase_of(30) == "burst1"

    def test_burst_queries_hit_the_block_hot_page(self):
        pack = FlashCrowdPack(phase_length=8, burst_purity=1.0, **TINY)
        burst_queries = [
            e.query
            for e in pack.events()
            if isinstance(e, QueryEvent) and e.phase != "steady"
        ]
        assert burst_queries
        for query in burst_queries:
            assert isinstance(query.predicate, Comparison)
            assert query.predicate.column == "page"

    def test_steady_queries_scan_time_windows(self):
        pack = FlashCrowdPack(phase_length=8, **TINY)
        steady = [
            e.query
            for e in pack.events()
            if isinstance(e, QueryEvent) and e.phase == "steady"
        ]
        assert steady
        for query in steady:
            assert isinstance(query.predicate, Between)
            assert query.predicate.column == "event_time"


class TestDrifting:
    def test_hot_window_slides_forward(self):
        pack = DriftingPredicatesPack(drift_per_event=3.0, **TINY)
        assert pack.window_start(0) == 0.0
        assert pack.window_start(10) == 30.0

    def test_ingest_lands_at_the_frontier(self):
        pack = DriftingPredicatesPack(drift_per_event=5.0, **TINY)
        for index, event in enumerate(pack.events()):
            if isinstance(event, IngestEvent):
                assert event.batch["ts"].min() >= pack.window_start(index)


class TestMultiTenant:
    def test_is_shard_aware_on_the_tenant_column(self):
        pack = MultiTenantPack(**TINY)
        assert pack.shard_key == "tenant"
        assert "tenant" in pack.schema()

    def test_tenant_values_stay_in_range(self):
        pack = MultiTenantPack(num_tenants=8, **TINY)
        full = pack.full_table()
        assert full["tenant"].min() >= 0
        assert full["tenant"].max() < 8

    def test_hot_tenant_is_deterministic_per_block(self):
        pack = MultiTenantPack(**TINY)
        assert pack.hot_tenant(3) == pack.hot_tenant(3)


class TestAdversarial:
    def test_regimes_rotate_round_robin_over_columns(self):
        pack = AdversarialPack(num_columns=3, regime_length=4, **TINY)
        assert pack.regime_of(0) == 0
        assert pack.regime_of(4) == 1
        assert [pack.regime_column(r) for r in range(4)] == ["c0", "c1", "c2", "c0"]

    def test_queries_scan_the_regime_column_narrowly(self):
        pack = AdversarialPack(num_columns=4, regime_length=2, scan_width=0.05, **TINY)
        for index, event in enumerate(pack.events()):
            if not isinstance(event, QueryEvent):
                continue
            predicate = event.query.predicate
            assert isinstance(predicate, Between)
            assert predicate.column == pack.regime_column(pack.regime_of(index))
            assert predicate.high - predicate.low == pytest.approx(0.05)

    def test_one_candidate_per_rotating_column(self):
        pack = AdversarialPack(num_columns=5, **TINY)
        layouts = pack.candidate_layouts(pack.base_table(), 8)
        assert [c.layout_id for c in layouts] == [
            f"adversarial-range-c{i}" for i in range(5)
        ]
