"""CLI round-trip: init → ingest → query → stats → reorg → events → shards.

Runs every command through click's ``CliRunner`` against a temp store —
once single-engine and once 4-shard, from the same commands (the
acceptance criterion): only the manifest differs.
"""

from __future__ import annotations

import csv
import json
import random

import pytest
from click.testing import CliRunner

from repro.cli.formatting import format_rows
from repro.cli.main import main

VOCAB = ["APAC", "EU", "US"]


def _manifest_dict(sharded: bool) -> dict:
    manifest = {
        "version": 1,
        "schema": [
            {"name": "price", "kind": "numeric"},
            {"name": "qty", "kind": "numeric"},
            {"name": "region", "kind": "categorical", "vocabulary": VOCAB},
        ],
        "builder": {"kind": "range", "column": "price"},
        "engine": {"num_partitions": 8, "alpha": 4.0, "seed": 7},
    }
    if sharded:
        manifest["shards"] = {"num_shards": 4, "shard_key": "price"}
    return manifest


@pytest.fixture(params=[False, True], ids=["single", "sharded4"])
def store_setup(request, tmp_path):
    """(runner, store_path, csv_path, expected >=50 matches, total rows)."""
    runner = CliRunner()
    config = tmp_path / "manifest.json"
    config.write_text(json.dumps(_manifest_dict(request.param)))
    csv_path = tmp_path / "batch.csv"
    rows = []
    rng = random.Random(13)
    for _ in range(400):
        rows.append(
            {
                "price": round(rng.uniform(0, 100), 3),
                "qty": rng.randint(1, 9),
                "region": rng.choice(VOCAB),
            }
        )
    with open(csv_path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=["price", "qty", "region"])
        writer.writeheader()
        writer.writerows(rows)
    expected = sum(1 for row in rows if row["price"] >= 50 and row["region"] != "APAC")
    store = tmp_path / "store"
    result = runner.invoke(main, ["init", str(store), "--config", str(config)])
    assert result.exit_code == 0, result.output
    return runner, store, csv_path, expected, len(rows)


def _invoke(runner, args):
    result = runner.invoke(main, args)
    assert result.exit_code == 0, f"{args}: {result.output}"
    return result.output


def test_cli_round_trip(store_setup):
    runner, store, csv_path, expected, total = store_setup

    out = _invoke(runner, ["ingest", str(store), "--csv", str(csv_path)])
    assert "ingested 400 rows" in out

    out = _invoke(
        runner,
        [
            "query",
            str(store),
            "--where",
            "price >= 50 and region in ('EU','US')",
            "--format",
            "json",
        ],
    )
    (record,) = json.loads(out)
    assert record["rows_matched"] == expected
    assert record["total_rows"] == total

    out = _invoke(runner, ["stats", str(store), "--format", "json"])
    counters = {row["counter"]: row["value"] for row in json.loads(out)}
    assert counters["rows_ingested"] == total
    assert counters["batches_ingested"] >= 1

    out = _invoke(runner, ["reorg", str(store), "--format", "json"])
    (reorg_row,) = json.loads(out)
    assert reorg_row["reorgs_completed"] >= 1
    assert reorg_row["movement_charged"] > 0

    out = _invoke(runner, ["events", str(store), "--format", "json"])
    events = json.loads(out)
    assert any("ingest" in event["event"] for event in events)
    assert all(isinstance(event["shard"], int) for event in events)

    out = _invoke(runner, ["shards", str(store), "--format", "json"])
    shard_rows = json.loads(out)
    assert sum(row["rows_ingested"] for row in shard_rows) == total

    # the same query again after the reorg dry-run: derived state rebuilt
    out = _invoke(
        runner,
        ["query", str(store), "--where", "price >= 50 and region in ('EU','US')",
         "--format", "csv"],
    )
    assert str(expected) in out


def test_cli_shard_counts(store_setup):
    runner, store, csv_path, _, _ = store_setup
    _invoke(runner, ["ingest", str(store), "--csv", str(csv_path)])
    out = _invoke(runner, ["shards", str(store), "--format", "json"])
    shard_rows = json.loads(out)
    manifest = json.loads((store / "store.json").read_text())
    expected_shards = manifest.get("shards", {}).get("num_shards", 1)
    assert len(shard_rows) == expected_shards


def test_cli_errors_are_clean(tmp_path):
    runner = CliRunner()
    result = runner.invoke(main, ["query", str(tmp_path / "no-store"), "--where", "x > 1"])
    assert result.exit_code != 0
    assert "not an initialized store" in result.output

    config = tmp_path / "manifest.json"
    config.write_text(json.dumps(_manifest_dict(False)))
    store = tmp_path / "store"
    assert runner.invoke(main, ["init", str(store), "--config", str(config)]).exit_code == 0
    # double init refuses
    result = runner.invoke(main, ["init", str(store), "--config", str(config)])
    assert result.exit_code != 0
    assert "already initialized" in result.output
    # malformed predicate surfaces the parser's message
    csv_path = tmp_path / "one.csv"
    csv_path.write_text("price,qty,region\n1.0,2,EU\n")
    assert runner.invoke(main, ["ingest", str(store), "--csv", str(csv_path)]).exit_code == 0
    result = runner.invoke(main, ["query", str(store), "--where", "price >"])
    assert result.exit_code != 0
    assert "expected a number or quoted string" in result.output
    # reorg on an empty (different) store complains
    empty = tmp_path / "empty"
    assert runner.invoke(main, ["init", str(empty), "--config", str(config)]).exit_code == 0
    result = runner.invoke(main, ["reorg", str(empty)])
    assert result.exit_code != 0
    assert "no data" in result.output


def test_ingest_rejects_bad_csv(tmp_path):
    runner = CliRunner()
    config = tmp_path / "manifest.json"
    config.write_text(json.dumps(_manifest_dict(False)))
    store = tmp_path / "store"
    assert runner.invoke(main, ["init", str(store), "--config", str(config)]).exit_code == 0
    bad = tmp_path / "bad.csv"
    bad.write_text("price,qty,region\n1.0,2,MARS\n")
    result = runner.invoke(main, ["ingest", str(store), "--csv", str(bad)])
    assert result.exit_code != 0
    assert "MARS" in result.output
    empty = tmp_path / "empty.csv"
    empty.write_text("price,qty,region\n")
    result = runner.invoke(main, ["ingest", str(store), "--csv", str(empty)])
    assert result.exit_code != 0
    assert "no data rows" in result.output


def test_format_rows_shapes():
    rows = [{"a": 1, "b": "x"}, {"a": 2.5, "b": "longer"}]
    table = format_rows(rows, ["a", "b"], "table")
    assert table.splitlines()[0].split() == ["a", "b"]
    assert "2.5" in table
    as_csv = format_rows(rows, ["a", "b"], "csv")
    assert as_csv.splitlines()[0] == "a,b"
    assert json.loads(format_rows(rows, None, "json")) == rows
    with pytest.raises(ValueError, match="unknown format"):
        format_rows(rows, None, "xml")
    assert format_rows([], None, "csv") == ""
