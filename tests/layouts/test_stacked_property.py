"""Differential battery: the stacked 3-D tensors are bit-for-bit equal to
the per-layout ``CompiledWorkload`` matrices and the scalar ``may_match`` /
``matches_all`` oracle, across random layout mixes.

Reuses the adversarial generators of the workload-compiler property suite
(NaN/±inf boundaries, empty partitions, string-typed columns, partial
distinct sets, float64-lossy constants, unsupported predicate nodes) but
stacks *several* layouts — ragged partition counts, disjoint distinct-value
unions, residue layouts — into one state space, including mixes produced
by the real qd-tree / range / hash / z-order builders and membership churn
(add / tombstone / re-add) between evaluations.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layouts import (
    CompiledWorkload,
    HashLayoutBuilder,
    QdTreeBuilder,
    RangeLayoutBuilder,
    StackedStateSpace,
    ZOrderLayoutBuilder,
    ZoneMapIndex,
)
from repro.layouts.metadata import build_layout_metadata
from repro.queries import Query
from repro.queries.predicates import AlwaysTrue

from test_workload_compiler_property import (
    _mixed_predicates,
    _table_predicates,
    adversarial_metadata,
    make_table,
    scalar_matrices,
)


def assert_stack_equivalent(metadatas, predicates):
    """Stacked slices == per-layout compiled matrices == scalar oracle."""
    compiled = CompiledWorkload(predicates)
    indexes = {f"m{i}": ZoneMapIndex(metadata) for i, metadata in enumerate(metadatas)}
    stack = StackedStateSpace(indexes)
    may = stack.prune_tensor(compiled)
    all_ = stack.matches_all_tensor(compiled)
    fractions = stack.accessed_fractions(compiled)
    assert stack.layout_ids == list(indexes)
    for position, (_layout_id, index) in enumerate(indexes.items()):
        num = index.num_partitions
        np.testing.assert_array_equal(
            may[position, :, :num], compiled.prune_matrix(index)
        )
        np.testing.assert_array_equal(
            all_[position, :, :num], compiled.matches_all_matrix(index)
        )
        expected_may, expected_all = scalar_matrices(index.metadata, predicates)
        np.testing.assert_array_equal(may[position, :, :num], expected_may)
        np.testing.assert_array_equal(all_[position, :, :num], expected_all)
        np.testing.assert_array_equal(
            fractions[position], compiled.accessed_fractions(index)
        )


@given(
    metadatas=st.lists(adversarial_metadata(), min_size=1, max_size=5),
    predicates=st.lists(_mixed_predicates, min_size=0, max_size=8),
)
@settings(max_examples=150, deadline=None)
def test_adversarial_layout_mixes_match_oracle(metadatas, predicates):
    assert_stack_equivalent(metadatas, predicates)


@given(
    data_seed=st.integers(0, 10_000),
    layout_seeds=st.lists(st.integers(0, 10_000), min_size=1, max_size=6),
    n=st.integers(1, 300),
    predicates=_table_predicates,
)
@settings(max_examples=100, deadline=None)
def test_random_assignment_mixes_match_oracle(data_seed, layout_seeds, n, predicates):
    table = make_table(data_seed, n)
    metadatas = []
    for position, seed in enumerate(layout_seeds):
        num_partitions = 1 + (seed + position) % 12  # ragged on purpose
        assignment = np.random.default_rng(seed).integers(0, num_partitions, size=n)
        metadatas.append(build_layout_metadata(table, assignment))
    assert_stack_equivalent(metadatas, predicates)


@given(data_seed=st.integers(0, 10_000), predicates=_table_predicates)
@settings(max_examples=25, deadline=None)
def test_builder_layout_mixes_match_oracle(data_seed, predicates):
    """One of each real builder stacked together (qd-tree/range/hash/z-order)."""
    table = make_table(data_seed, 250)
    rng = np.random.default_rng(data_seed)
    workload = [Query(predicate=AlwaysTrue())]
    builders = [
        QdTreeBuilder(),
        RangeLayoutBuilder("a"),
        HashLayoutBuilder("c"),
        ZOrderLayoutBuilder(num_columns=2, default_columns=("a", "b")),
    ]
    metadatas = [
        builder.build(table, workload, 5, rng).metadata_for(table)
        for builder in builders
    ]
    assert_stack_equivalent(metadatas, predicates)


@given(
    metadatas=st.lists(adversarial_metadata(), min_size=2, max_size=6),
    predicates=st.lists(_mixed_predicates, min_size=1, max_size=6),
    remove_mask=st.lists(st.booleans(), min_size=2, max_size=6),
)
@settings(max_examples=60, deadline=None)
def test_membership_churn_keeps_equivalence(metadatas, predicates, remove_mask):
    """add → evaluate → tombstone some → evaluate → re-add → evaluate."""
    compiled = CompiledWorkload(predicates)
    indexes = {f"m{i}": ZoneMapIndex(metadata) for i, metadata in enumerate(metadatas)}
    stack = StackedStateSpace()
    for layout_id, index in indexes.items():
        stack.add_layout(layout_id, index)
    stack.prune_tensor(compiled)  # slabs warm before any removal
    removed = [
        layout_id
        for layout_id, kill in zip(indexes, remove_mask, strict=False)
        if kill and len(stack) > 1
        and not stack.remove_layout(layout_id)  # remove returns None
    ]
    for layout_id in stack.layout_ids:
        np.testing.assert_array_equal(
            stack.prune_matrix(compiled, layout_id),
            compiled.prune_matrix(indexes[layout_id]),
        )
    for layout_id in removed:  # re-add previously tombstoned layouts
        stack.add_layout(layout_id, indexes[layout_id])
        np.testing.assert_array_equal(
            stack.prune_matrix(compiled, layout_id),
            compiled.prune_matrix(indexes[layout_id]),
        )
