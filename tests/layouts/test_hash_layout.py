"""Tests for hash and round-robin layouts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.layouts import (
    HashLayout,
    HashLayoutBuilder,
    RoundRobinLayout,
    RoundRobinLayoutBuilder,
)


class TestHashLayout:
    def test_deterministic(self, simple_table):
        layout = HashLayout("y", 8)
        first = layout.assign(simple_table)
        second = layout.assign(simple_table)
        assert np.array_equal(first, second)

    def test_equal_values_collide(self, simple_table):
        layout = HashLayout("y", 8)
        assignment = layout.assign(simple_table)
        y = simple_table["y"]
        for value in np.unique(y)[:5]:
            partitions = np.unique(assignment[y == value])
            assert len(partitions) == 1

    def test_assignment_in_range(self, simple_table):
        assignment = HashLayout("x", 5).assign(simple_table)
        assert assignment.min() >= 0
        assert assignment.max() < 5

    def test_float_column_hashes_bit_pattern(self, simple_table):
        assignment = HashLayout("x", 16).assign(simple_table)
        # Continuous values should spread across most partitions.
        assert len(np.unique(assignment)) >= 8

    def test_small_integral_keys_spread_across_partitions(self):
        # Regression: integral floats 0.0..15.0 differ only in exponent
        # bits; without the xor-fold finalizer they all collided on one
        # partition (multiplication never feeds high bits back down),
        # which collapsed tenant-keyed shard routing onto a single shard.
        from repro.storage import ColumnSpec, Schema, Table

        schema = Schema(columns=(ColumnSpec("tenant", "numeric"),))
        table = Table(schema, {"tenant": np.arange(16, dtype=np.float64)})
        assignment = HashLayout("tenant", 4).assign(table)
        assert len(np.unique(assignment)) >= 3

    def test_builder(self, simple_table, rng):
        layout = HashLayoutBuilder("y").build(simple_table, [], 4, rng)
        assert layout.num_partitions == 4


class TestRoundRobinLayout:
    def test_striping(self, simple_table):
        assignment = RoundRobinLayout(4).assign(simple_table)
        assert assignment[:8].tolist() == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_balance_exact(self, simple_table):
        counts = np.bincount(RoundRobinLayout(4).assign(simple_table))
        assert counts.tolist() == [250, 250, 250, 250]

    def test_builder(self, simple_table, rng):
        layout = RoundRobinLayoutBuilder().build(simple_table, [], 3, rng)
        assert layout.num_partitions == 3

    def test_invalid_partition_count(self):
        with pytest.raises(ValueError):
            RoundRobinLayout(0)
