"""Tests for range (sort-based) layouts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.layouts import RangeLayout, RangeLayoutBuilder, equal_frequency_boundaries
from repro.storage import ColumnSpec, Schema, Table


class TestEqualFrequencyBoundaries:
    def test_uniform_data_splits_evenly(self):
        values = np.arange(1000, dtype=np.float64)
        boundaries = equal_frequency_boundaries(values, 4)
        assert len(boundaries) == 3
        assignment = np.searchsorted(boundaries, values, side="left")
        counts = np.bincount(assignment, minlength=4)
        assert counts.min() >= 200

    def test_single_partition_no_boundaries(self):
        assert len(equal_frequency_boundaries(np.arange(10.0), 1)) == 0

    def test_empty_values(self):
        assert len(equal_frequency_boundaries(np.empty(0), 4)) == 0

    def test_invalid_partition_count(self):
        with pytest.raises(ValueError):
            equal_frequency_boundaries(np.arange(10.0), 0)

    def test_heavy_hitter_deduplicates(self):
        values = np.zeros(100)
        boundaries = equal_frequency_boundaries(values, 8)
        assert len(boundaries) <= 1

    def test_boundaries_strictly_increasing(self, rng):
        values = rng.normal(size=5000)
        boundaries = equal_frequency_boundaries(values, 16)
        assert np.all(np.diff(boundaries) > 0)


class TestRangeLayout:
    def test_nonincreasing_boundaries_rejected(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            RangeLayout("x", np.array([1.0, 1.0]))

    def test_assignment_respects_boundaries(self, simple_table):
        layout = RangeLayout("x", np.array([25.0, 50.0, 75.0]))
        assignment = layout.assign(simple_table)
        x = simple_table["x"]
        assert (assignment[x < 25.0] == 0).all()
        assert (assignment[(x >= 25.0) & (x < 50.0)] == 1).all()
        assert (assignment[x >= 75.0] == 3).all()

    def test_assignment_in_range(self, simple_table):
        layout = RangeLayout("x", np.array([50.0]))
        assignment = layout.assign(simple_table)
        assert assignment.min() >= 0
        assert assignment.max() < layout.num_partitions

    def test_describe_mentions_column(self):
        layout = RangeLayout("time", np.array([1.0]))
        assert "time" in layout.describe()


class TestRangeLayoutBuilder:
    def test_builder_balances_partitions(self, simple_table, rng):
        layout = RangeLayoutBuilder("x").build(simple_table, [], 8, rng)
        assignment = layout.assign(simple_table)
        counts = np.bincount(assignment, minlength=layout.num_partitions)
        assert counts.max() <= 2 * simple_table.num_rows / 8

    def test_builder_on_skewed_column(self, rng):
        schema = Schema(columns=(ColumnSpec("v", "numeric"),))
        table = Table(schema, {"v": rng.exponential(1.0, size=10_000)})
        layout = RangeLayoutBuilder("v").build(table, [], 10, rng)
        counts = np.bincount(layout.assign(table), minlength=layout.num_partitions)
        # Equal-frequency quantiles keep skewed data balanced.
        assert counts.max() < 0.25 * table.num_rows

    def test_generalizes_from_sample_to_full_table(self, simple_table, rng):
        sample = simple_table.sample(0.1, rng)
        layout = RangeLayoutBuilder("x").build(sample, [], 4, rng)
        assignment = layout.assign(simple_table)
        counts = np.bincount(assignment, minlength=layout.num_partitions)
        assert counts.max() < 0.6 * simple_table.num_rows
