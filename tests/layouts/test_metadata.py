"""Tests for partition metadata construction and cost estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.layouts.metadata import (
    DISTINCT_SET_CAP,
    ColumnStats,
    LayoutMetadata,
    PartitionMetadata,
    build_layout_metadata,
    build_partition_metadata,
    partition_row_indices,
)
from repro.queries import between, eq
from repro.storage import ColumnSpec, Schema, Table


class TestColumnStats:
    def test_min_above_max_rejected(self):
        with pytest.raises(ValueError):
            ColumnStats(min=5, max=4)

    def test_equal_bounds_allowed(self):
        stats = ColumnStats(min=3, max=3)
        assert stats.min == stats.max == 3


class TestPartitionMetadata:
    def test_negative_row_count_rejected(self):
        with pytest.raises(ValueError):
            PartitionMetadata(partition_id=0, row_count=-1, stats={})

    def test_build_from_rows(self, simple_table):
        rows = np.arange(100)
        metadata = build_partition_metadata(simple_table, rows, 7)
        assert metadata.partition_id == 7
        assert metadata.row_count == 100
        assert metadata.stats["x"].min == simple_table["x"][:100].min()
        assert metadata.stats["x"].max == simple_table["x"][:100].max()

    def test_categorical_gets_distinct_set(self, simple_table):
        metadata = build_partition_metadata(simple_table, np.arange(50), 0)
        assert metadata.stats["color"].distinct is not None
        assert metadata.stats["color"].distinct <= {0, 1, 2}

    def test_numeric_has_no_distinct_set(self, simple_table):
        metadata = build_partition_metadata(simple_table, np.arange(50), 0)
        assert metadata.stats["x"].distinct is None

    def test_wide_categorical_falls_back_to_minmax(self):
        vocab = tuple(f"v{i}" for i in range(DISTINCT_SET_CAP + 10))
        schema = Schema(columns=(ColumnSpec("c", "categorical", vocab),))
        table = Table(schema, {"c": np.arange(DISTINCT_SET_CAP + 10, dtype=np.int32)})
        metadata = build_partition_metadata(table, np.arange(table.num_rows), 0)
        assert metadata.stats["c"].distinct is None


class TestLayoutMetadata:
    def test_total_rows_and_partitions(self, simple_table):
        assignment = np.arange(simple_table.num_rows) % 4
        metadata = build_layout_metadata(simple_table, assignment)
        assert metadata.num_partitions == 4
        assert metadata.total_rows == simple_table.num_rows

    def test_empty_partitions_omitted(self, simple_table):
        assignment = np.full(simple_table.num_rows, 3)
        metadata = build_layout_metadata(simple_table, assignment)
        assert metadata.num_partitions == 1
        assert metadata.partitions[0].partition_id == 3

    def test_assignment_length_mismatch(self, simple_table):
        with pytest.raises(ValueError, match="assignment length"):
            build_layout_metadata(simple_table, np.zeros(3))

    def test_empty_table(self, simple_schema):
        table = Table(
            simple_schema,
            {"x": np.empty(0), "y": np.empty(0), "color": np.empty(0, dtype=np.int32)},
        )
        metadata = build_layout_metadata(table, np.empty(0, dtype=np.int64))
        assert metadata.num_partitions == 0
        assert metadata.accessed_fraction(eq("x", 1)) == 0.0

    def test_accessed_fraction_range(self, simple_metadata):
        fraction = simple_metadata.accessed_fraction(between("x", 10.0, 20.0))
        assert 0.0 <= fraction <= 1.0

    def test_fractions_complement(self, simple_metadata):
        predicate = between("x", 10.0, 20.0)
        total = simple_metadata.accessed_fraction(predicate) + simple_metadata.skipped_fraction(
            predicate
        )
        assert total == pytest.approx(1.0)

    def test_striped_layout_cannot_skip(self, simple_metadata):
        # Round-robin striping leaves every partition overlapping the range.
        assert simple_metadata.accessed_fraction(between("x", 10.0, 20.0)) == 1.0

    def test_sorted_layout_skips(self, simple_table):
        order = np.argsort(simple_table["x"])
        assignment = np.empty(simple_table.num_rows, dtype=np.int64)
        assignment[order] = np.arange(simple_table.num_rows) // 250  # 4 parts
        metadata = build_layout_metadata(simple_table, assignment)
        fraction = metadata.accessed_fraction(between("x", 0.0, 10.0))
        assert fraction <= 0.5

    def test_relevant_partitions_sound(self, simple_table):
        order = np.argsort(simple_table["x"])
        assignment = np.empty(simple_table.num_rows, dtype=np.int64)
        assignment[order] = np.arange(simple_table.num_rows) // 100
        metadata = build_layout_metadata(simple_table, assignment)
        predicate = between("x", 30.0, 40.0)
        relevant_ids = {p.partition_id for p in metadata.relevant_partitions(predicate)}
        matches = predicate.evaluate(simple_table.columns)
        touched_ids = set(assignment[matches].tolist())
        assert touched_ids <= relevant_ids


class TestPartitionRowIndices:
    def test_groups_cover_all_rows(self):
        assignment = np.array([2, 0, 1, 0, 2, 2])
        groups = partition_row_indices(assignment)
        assert set(groups) == {0, 1, 2}
        all_rows = sorted(int(i) for rows in groups.values() for i in rows)
        assert all_rows == list(range(6))

    def test_group_membership(self):
        assignment = np.array([1, 0, 1])
        groups = partition_row_indices(assignment)
        assert groups[1].tolist() == [0, 2]
        assert groups[0].tolist() == [1]

    def test_empty_assignment(self):
        assert partition_row_indices(np.empty(0, dtype=np.int64)) == {}
