"""Unit tests for the workload compiler's batched matrices.

``CompiledWorkload`` must be a bit-for-bit drop-in for both the
per-predicate ``ZoneMapIndex`` path and the scalar
``may_match``/``matches_all`` oracle; these tests pin that equivalence on
hand-picked structures and every fallback edge (residue nodes, unknown
columns, string boundaries, unsupported predicate classes, constant
duplication, empty inputs) plus the incremental ``revalidate`` contract.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.layouts import (
    CompiledWorkload,
    ZoneMapIndex,
    compile_workload,
    compute_reorg_delta,
)
from repro.layouts.metadata import (
    ColumnStats,
    LayoutMetadata,
    PartitionMetadata,
    build_layout_metadata,
)
from repro.queries import between, eq, ge, isin, le, lt, ne
from repro.queries.predicates import (
    AlwaysFalse,
    AlwaysTrue,
    And,
    Between,
    Comparison,
    In,
    Not,
    Or,
    Predicate,
)


def scalar_matrices(metadata, predicates):
    may = np.array(
        [[p.may_match(part) for part in metadata.partitions] for p in predicates],
        dtype=bool,
    ).reshape(len(predicates), len(metadata.partitions))
    all_ = np.array(
        [[p.matches_all(part) for part in metadata.partitions] for p in predicates],
        dtype=bool,
    ).reshape(len(predicates), len(metadata.partitions))
    return may, all_


def assert_all_paths_agree(metadata, predicates):
    """compiled == per-predicate == scalar oracle, both matrix sides."""
    index = ZoneMapIndex(metadata)
    workload = CompiledWorkload(predicates)
    got_may, got_all = workload.matrices(index)
    per_pred_may = index.prune_matrix(predicates)
    expected_may, expected_all = scalar_matrices(metadata, predicates)
    np.testing.assert_array_equal(got_may, per_pred_may)
    np.testing.assert_array_equal(got_may, expected_may)
    np.testing.assert_array_equal(got_all, expected_all)
    np.testing.assert_array_equal(
        workload.accessed_fractions(index), index.accessed_fractions(predicates)
    )


@pytest.fixture
def striped_metadata(simple_table):
    assignment = np.arange(simple_table.num_rows) % 6
    return build_layout_metadata(simple_table, assignment)


@pytest.fixture
def sorted_metadata(simple_table):
    order = np.argsort(simple_table["x"], kind="stable")
    assignment = np.empty(simple_table.num_rows, dtype=np.int64)
    assignment[order] = np.arange(simple_table.num_rows) * 8 // simple_table.num_rows
    return build_layout_metadata(simple_table, assignment)


CONJUNCTIVE_SAMPLE = [
    And((between("x", 10.0, 60.0), eq("color", 0))),
    And((lt("x", 30.0), ge("y", 10), ne("color", 2))),
    between("y", -5, 3),
    eq("color", 1),
    And((isin("color", [0, 2]), between("x", 0.0, 50.0))),
    le("x", 100.0),
    And((And((lt("x", 80.0), ge("x", 20.0))), eq("y", 7))),  # nested And
    AlwaysTrue(),
    AlwaysFalse(),
]


def test_conjunctive_sample_matches_all_paths(striped_metadata, sorted_metadata):
    assert_all_paths_agree(striped_metadata, CONJUNCTIVE_SAMPLE)
    assert_all_paths_agree(sorted_metadata, CONJUNCTIVE_SAMPLE)


def test_residue_or_not_trees_match(sorted_metadata):
    predicates = [
        Or((lt("x", 5.0), ge("x", 95.0))),
        Not(between("x", 0.0, 50.0)),
        And((Not(eq("color", 2)), Or((between("y", 0, 10), between("y", 40, 50))))),
        And((between("x", 20.0, 30.0), Not(isin("color", [1])))),
        Not(And((isin("color", [0, 1, 2]), between("y", 0, 50)))),
    ]
    assert_all_paths_agree(sorted_metadata, predicates)


def test_duplicate_atoms_within_one_query(sorted_metadata):
    """Same (column, op) twice in one conjunction exercises layered folding."""
    predicates = [
        And((lt("x", 50.0), lt("x", 30.0))),
        And((lt("x", 30.0), lt("x", 50.0))),
        And((between("x", 0.0, 40.0), between("x", 20.0, 90.0), lt("y", 30))),
        And((eq("color", 1), eq("color", 2))),  # unsatisfiable pair
    ]
    assert_all_paths_agree(sorted_metadata, predicates)


def test_repeated_constants_across_queries_dedup(sorted_metadata):
    """Segment-style workloads repeat constants; dedup must stay exact."""
    predicates = [eq("color", i % 3) for i in range(24)]
    predicates += [between("x", 10.0, 20.0)] * 8
    predicates += [And((eq("color", 0), between("x", 10.0, 20.0)))] * 5
    assert_all_paths_agree(sorted_metadata, predicates)


def test_unknown_column_never_pruned(striped_metadata):
    predicates = [
        between("nope", 0, 1),
        And((eq("nope", 3), between("x", 0.0, 50.0))),
        isin("nope", [1, 2]),
    ]
    assert_all_paths_agree(striped_metadata, predicates)
    matrix = CompiledWorkload([between("nope", 0, 1)]).prune_matrix(
        ZoneMapIndex(striped_metadata)
    )
    assert matrix.all()  # no stats => no pruning, soundly


def test_string_zone_boundaries_fall_back(simple_table):
    partitions = (
        PartitionMetadata(0, 10, {"s": ColumnStats("apple", "mango")}),
        PartitionMetadata(1, 10, {"s": ColumnStats("melon", "zebra")}),
    )
    metadata = LayoutMetadata(partitions=partitions)
    predicates = [
        Comparison("s", "<", "m"),
        And((Between("s", "a", "c"), Comparison("s", "!=", "b"))),
        In("s", ["apple", "zebra"]),
    ]
    assert_all_paths_agree(metadata, predicates)


def test_lossy_and_nan_constants_fall_back(sorted_metadata):
    big = 2**53
    predicates = [
        lt("x", big + 1),
        And((between("x", 0.0, float("inf")), lt("x", float("nan")))),
        eq("x", float("inf")),
        between("y", -float("inf"), 25),
    ]
    assert_all_paths_agree(sorted_metadata, predicates)


class OddEvenPredicate(Predicate):
    """A user-defined predicate the compiler cannot lower."""

    __slots__ = ("column",)

    def __init__(self, column: str):
        self.column = column

    def evaluate(self, columns):
        return columns[self.column] % 2 == 0

    def may_match(self, metadata):
        stats = metadata.stats.get(self.column)
        if stats is None or stats.distinct is None:
            return True
        return any(v % 2 == 0 for v in stats.distinct)

    def matches_all(self, metadata):
        stats = metadata.stats.get(self.column)
        if stats is None or stats.distinct is None:
            return False
        return all(v % 2 == 0 for v in stats.distinct)

    def columns(self):
        return frozenset((self.column,))

    def negate(self):
        return Not(self)

    def cache_key(self):
        return ("oddeven", self.column)


def test_unknown_predicate_class_is_residue(striped_metadata):
    custom = OddEvenPredicate("color")
    predicates = [
        custom,
        And((custom, between("x", 0.0, 50.0))),
        Not(custom),
    ]
    assert_all_paths_agree(striped_metadata, predicates)


def test_mixed_distinct_in_atoms_fall_back(rng):
    """IN over a column where only some partitions keep distinct sets."""
    from repro.layouts.metadata import DISTINCT_SET_CAP
    from repro.storage import ColumnSpec, Schema, Table

    vocab = tuple(f"v{i}" for i in range(DISTINCT_SET_CAP * 2))
    schema = Schema(columns=(ColumnSpec("c", "categorical", vocab),))
    narrow = np.repeat(np.arange(8, dtype=np.int32), 50)
    wide = rng.integers(0, len(vocab), size=4 * DISTINCT_SET_CAP).astype(np.int32)
    table = Table(schema, {"c": np.concatenate([narrow, wide])})
    assignment = np.concatenate(
        [np.zeros(len(narrow), dtype=np.int64), np.ones(len(wide), dtype=np.int64)]
    )
    metadata = build_layout_metadata(table, assignment)
    kinds = {p.partition_id: p.stats["c"].distinct is not None for p in metadata.partitions}
    assert kinds[0] and not kinds[1]
    predicates = [
        isin("c", [2, 40]),
        And((isin("c", [1, 3]), ne("c", 1))),
        eq("c", 3),
        eq("c", 100),
        Not(isin("c", list(range(8)))),
    ]
    assert_all_paths_agree(metadata, predicates)


def test_empty_sample_and_empty_layout(sorted_metadata):
    index = ZoneMapIndex(sorted_metadata)
    empty = CompiledWorkload([])
    assert empty.prune_matrix(index).shape == (0, sorted_metadata.num_partitions)
    assert empty.accessed_fractions(index).shape == (0,)

    empty_layout = ZoneMapIndex(LayoutMetadata(partitions=()))
    workload = CompiledWorkload([between("x", 0.0, 1.0), AlwaysTrue()])
    assert workload.prune_matrix(empty_layout).shape == (2, 0)
    np.testing.assert_array_equal(
        workload.accessed_fractions(empty_layout), np.zeros(2)
    )


def test_compile_workload_wrapper(sorted_metadata):
    predicates = [between("x", 0.0, 10.0)]
    index = ZoneMapIndex(sorted_metadata)
    np.testing.assert_array_equal(
        compile_workload(predicates).prune_matrix(index),
        CompiledWorkload(predicates).prune_matrix(index),
    )


def test_layout_independence(striped_metadata, sorted_metadata):
    """One compiled sample serves multiple layouts with exact results."""
    workload = CompiledWorkload(CONJUNCTIVE_SAMPLE)
    for metadata in (striped_metadata, sorted_metadata):
        index = ZoneMapIndex(metadata)
        np.testing.assert_array_equal(
            workload.prune_matrix(index), index.prune_matrix(CONJUNCTIVE_SAMPLE)
        )


class TestRevalidate:
    def _layouts(self, simple_table, seed=5):
        rng = np.random.default_rng(seed)
        assignment = rng.integers(0, 10, size=simple_table.num_rows)
        new_assignment = assignment.copy()
        moved = np.isin(assignment, [2, 7])
        new_assignment[moved] = rng.choice([2, 7], size=int(moved.sum()))
        old = build_layout_metadata(simple_table, assignment)
        new = build_layout_metadata(simple_table, new_assignment)
        return old, new

    def test_revalidate_equals_fresh_evaluation(self, simple_table):
        old, new = self._layouts(simple_table)
        delta = compute_reorg_delta(old, new)
        assert 0 < len(delta.changed) < new.num_partitions
        workload = CompiledWorkload(CONJUNCTIVE_SAMPLE)
        old_index = ZoneMapIndex(old)
        prior_may = workload.prune_matrix(old_index)
        prior_all = workload.matches_all_matrix(old_index)
        new_index = old_index.apply_reorg(delta)
        fresh = ZoneMapIndex(new)
        np.testing.assert_array_equal(
            workload.revalidate(new_index, delta, prior_may),
            workload.prune_matrix(fresh),
        )
        np.testing.assert_array_equal(
            workload.revalidate(new_index, delta, prior_all, want_all=True),
            workload.matches_all_matrix(fresh),
        )

    def test_revalidate_rejects_mismatched_prior(self, simple_table):
        old, new = self._layouts(simple_table)
        delta = compute_reorg_delta(old, new)
        workload = CompiledWorkload(CONJUNCTIVE_SAMPLE)
        new_index = ZoneMapIndex(old).apply_reorg(delta)
        bad_prior = np.ones((len(CONJUNCTIVE_SAMPLE), old.num_partitions + 1), dtype=bool)
        with pytest.raises(ValueError):
            workload.revalidate(new_index, delta, bad_prior)

    def test_revalidate_rejects_foreign_index(self, simple_table):
        old, new = self._layouts(simple_table)
        delta = compute_reorg_delta(old, new)
        workload = CompiledWorkload(CONJUNCTIVE_SAMPLE)
        prior = workload.prune_matrix(ZoneMapIndex(old))
        with pytest.raises(ValueError):
            workload.revalidate(ZoneMapIndex(old), delta, prior)
