"""Property tests: data skipping must never lose rows, for ANY layout.

This is design decision #4 in DESIGN.md: the logical cost model is only
trustworthy if metadata pruning is sound — a partition declared skippable
must contain zero matching rows.  We fuzz across all four layout families
and random predicate workloads.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layouts import (
    HashLayout,
    QdTreeBuilder,
    RangeLayoutBuilder,
    RoundRobinLayout,
    ZOrderLayoutBuilder,
)
from repro.layouts.base import eval_skipped
from repro.queries import Query, between, conjunction, eq
from repro.storage import ColumnSpec, Schema, Table

_SCHEMA = Schema(
    columns=(
        ColumnSpec("a", "numeric"),
        ColumnSpec("b", "numeric"),
        ColumnSpec("c", "categorical", tuple(f"v{i}" for i in range(5))),
    )
)


def make_table(seed: int, n: int) -> Table:
    rng = np.random.default_rng(seed)
    return Table(
        _SCHEMA,
        {
            "a": rng.integers(0, 100, size=n).astype(np.int64),
            "b": rng.uniform(0, 50, size=n),
            "c": rng.integers(0, 5, size=n).astype(np.int32),
        },
    )


def make_query(seed: int) -> Query:
    rng = np.random.default_rng(seed)
    parts = []
    if rng.random() < 0.8:
        low = int(rng.integers(0, 90))
        parts.append(between("a", low, low + int(rng.integers(1, 30))))
    if rng.random() < 0.5:
        low = float(rng.uniform(0, 40))
        parts.append(between("b", low, low + float(rng.uniform(1, 15))))
    if rng.random() < 0.4:
        parts.append(eq("c", int(rng.integers(5))))
    if not parts:
        parts.append(between("a", 0, 50))
    return Query(predicate=conjunction(parts))


def build_layout(kind: str, table: Table, workload, seed: int):
    rng = np.random.default_rng(seed)
    if kind == "range":
        return RangeLayoutBuilder("a").build(table, workload, 6, rng)
    if kind == "zorder":
        return ZOrderLayoutBuilder(columns=("a", "b")).build(table, workload, 6, rng)
    if kind == "qdtree":
        return QdTreeBuilder().build(table, workload, 6, rng)
    if kind == "hash":
        return HashLayout("a", 6)
    return RoundRobinLayout(6)


@given(
    data_seed=st.integers(0, 10_000),
    query_seed=st.integers(0, 10_000),
    kind=st.sampled_from(["range", "zorder", "qdtree", "hash", "roundrobin"]),
    n=st.integers(50, 400),
)
@settings(max_examples=120, deadline=None)
def test_pruned_partitions_contain_no_matches(data_seed, query_seed, kind, n):
    table = make_table(data_seed, n)
    workload = [make_query(query_seed + i) for i in range(8)]
    layout = build_layout(kind, table, workload, data_seed)
    query = make_query(query_seed)

    assignment = layout.assign(table)
    metadata = layout.metadata_for(table)
    matches = query.predicate.evaluate(table.columns)
    matched_partitions = set(assignment[matches].tolist())
    relevant = {p.partition_id for p in metadata.relevant_partitions(query.predicate)}
    # Soundness: every partition holding a match must be deemed relevant.
    assert matched_partitions <= relevant


@given(
    data_seed=st.integers(0, 10_000),
    query_seed=st.integers(0, 10_000),
    kind=st.sampled_from(["range", "zorder", "qdtree"]),
)
@settings(max_examples=60, deadline=None)
def test_accessed_fraction_upper_bounds_true_selectivity(data_seed, query_seed, kind):
    """c(s, q) can overestimate (pruning is approximate) but never under."""
    table = make_table(data_seed, 300)
    workload = [make_query(query_seed + i) for i in range(8)]
    layout = build_layout(kind, table, workload, data_seed)
    query = make_query(query_seed)
    metadata = layout.metadata_for(table)
    true_selectivity = float(query.predicate.evaluate(table.columns).mean())
    assert metadata.accessed_fraction(query.predicate) >= true_selectivity - 1e-12


@given(data_seed=st.integers(0, 10_000), query_seed=st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_eval_skipped_in_unit_interval(data_seed, query_seed):
    table = make_table(data_seed, 200)
    workload = [make_query(query_seed + i) for i in range(5)]
    layout = build_layout("qdtree", table, workload, data_seed)
    skipped = eval_skipped(layout.metadata_for(table), workload)
    assert 0.0 <= skipped <= 1.0


def test_eval_skipped_empty_workload(simple_table, rng):
    layout = RoundRobinLayout(4)
    assert eval_skipped(layout.metadata_for(simple_table), []) == 0.0
