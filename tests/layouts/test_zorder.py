"""Tests for Morton interleaving and Z-order layouts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.layouts import ZOrderLayoutBuilder, morton_interleave
from repro.layouts.zorder import ZOrderLayout
from repro.queries import Query, between, conjunction
from repro.storage import ColumnSpec, Schema, Table


class TestMortonInterleave:
    def test_known_values_2d(self):
        # morton(x=1, y=0) -> bit 0 set; morton(x=0, y=1) -> bit 1 set.
        codes = morton_interleave([np.array([1, 0, 1]), np.array([0, 1, 1])], bits=4)
        assert codes.tolist() == [1, 2, 3]

    def test_bijective_on_grid(self):
        xs, ys = np.meshgrid(np.arange(16), np.arange(16))
        codes = morton_interleave([xs.ravel(), ys.ravel()], bits=4)
        assert len(np.unique(codes)) == 256

    def test_monotone_per_dimension(self):
        xs = np.arange(32)
        fixed = np.zeros(32, dtype=np.int64)
        codes = morton_interleave([xs, fixed], bits=5)
        assert np.all(np.diff(codes.astype(np.int64)) > 0)

    def test_three_dims(self):
        codes = morton_interleave(
            [np.array([1]), np.array([1]), np.array([1])], bits=2
        )
        assert codes.tolist() == [0b111]

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="exceeds"):
            morton_interleave([np.array([16])], bits=4)

    def test_rejects_bit_overflow(self):
        with pytest.raises(ValueError, match="64-bit"):
            morton_interleave([np.array([0])] * 3, bits=22)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError, match="equal length"):
            morton_interleave([np.array([0, 1]), np.array([0])], bits=4)

    def test_rejects_empty_dims(self):
        with pytest.raises(ValueError, match="at least one"):
            morton_interleave([], bits=4)


class TestZOrderLayout:
    def make_layout(self, table, rng, columns=("x", "y"), k=8):
        return ZOrderLayoutBuilder(columns=columns).build(table, [], k, rng)

    def test_assignment_in_range(self, simple_table, rng):
        layout = self.make_layout(simple_table, rng)
        assignment = layout.assign(simple_table)
        assert assignment.min() >= 0
        assert assignment.max() < layout.num_partitions

    def test_partitions_roughly_balanced(self, simple_table, rng):
        layout = self.make_layout(simple_table, rng)
        counts = np.bincount(layout.assign(simple_table), minlength=layout.num_partitions)
        assert counts.max() <= 3 * simple_table.num_rows / layout.num_partitions

    def test_locality_beats_round_robin(self, rng):
        """A box query should touch fewer rows under Z-order than striping."""
        n = 20_000
        schema = Schema(columns=(ColumnSpec("a", "numeric"), ColumnSpec("b", "numeric")))
        table = Table(
            schema,
            {"a": rng.uniform(0, 100, n), "b": rng.uniform(0, 100, n)},
        )
        layout = ZOrderLayoutBuilder(columns=("a", "b")).build(table, [], 16, rng)
        metadata = layout.metadata_for(table)
        box = conjunction((between("a", 10.0, 20.0), between("b", 10.0, 20.0)))
        assert metadata.accessed_fraction(box) < 0.75

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            ZOrderLayout((), {}, np.empty(0, dtype=np.uint64))

    def test_describe_lists_columns(self, simple_table, rng):
        layout = self.make_layout(simple_table, rng)
        assert "x" in layout.describe() and "y" in layout.describe()


class TestZOrderLayoutBuilder:
    def test_requires_columns_or_default(self):
        with pytest.raises(ValueError):
            ZOrderLayoutBuilder()

    def test_picks_top_queried_columns(self, simple_table, rng):
        workload = [Query(predicate=between("y", 0, 10))] * 5 + [
            Query(predicate=between("x", 0.0, 1.0))
        ] * 3
        builder = ZOrderLayoutBuilder(num_columns=2, default_columns=("x",))
        layout = builder.build(simple_table, workload, 8, rng)
        assert set(layout.columns) == {"x", "y"}

    def test_falls_back_to_default_columns(self, simple_table, rng):
        builder = ZOrderLayoutBuilder(default_columns=("x",))
        layout = builder.build(simple_table, [], 8, rng)
        assert layout.columns == ("x",)

    def test_single_column_zorder_is_range_like(self, simple_table, rng):
        builder = ZOrderLayoutBuilder(columns=("x",))
        layout = builder.build(simple_table, [], 8, rng)
        assignment = layout.assign(simple_table)
        # Sorted by x, partition ids must be monotone in x.
        order = np.argsort(simple_table["x"])
        assert np.all(np.diff(assignment[order]) >= 0)

    def test_respects_allowed_columns_from_sample(self, simple_table, rng):
        workload = [Query(predicate=between("nonexistent", 0, 1))]
        builder = ZOrderLayoutBuilder(num_columns=2, default_columns=("x",))
        layout = builder.build(simple_table, workload, 4, rng)
        assert layout.columns == ("x",)
