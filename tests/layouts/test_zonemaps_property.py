"""Property tests: the vectorized pruning matrix equals the scalar oracle.

For random tables, random partition assignments (plus real layout
builders), and random predicate trees, the compiled zone-map engine must
produce *exactly* the same may-match / matches-all verdicts as looping
``Predicate.may_match`` over ``PartitionMetadata`` — no approximation is
tolerated, because the fast path replaces the oracle in every decision
loop.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layouts import QdTreeBuilder, RangeLayoutBuilder, ZoneMapIndex
from repro.layouts.metadata import build_layout_metadata
from repro.queries.predicates import And, Between, Comparison, In, Not, Or
from repro.storage import ColumnSpec, Schema, Table

_SCHEMA = Schema(
    columns=(
        ColumnSpec("a", "numeric"),
        ColumnSpec("b", "numeric"),
        ColumnSpec("c", "categorical", tuple(f"v{i}" for i in range(8))),
    )
)


def make_table(seed: int, n: int) -> Table:
    rng = np.random.default_rng(seed)
    return Table(
        _SCHEMA,
        {
            "a": rng.integers(-20, 21, size=n).astype(np.int64),
            "b": rng.uniform(-5.0, 45.0, size=n),
            "c": rng.integers(0, 8, size=n).astype(np.int32),
        },
    )


def atomic_predicates():
    comparisons = st.builds(
        Comparison,
        st.sampled_from(["a", "b", "c"]),
        st.sampled_from(["<", "<=", ">", ">=", "==", "!="]),
        st.integers(min_value=-25, max_value=25),
    )
    betweens = st.builds(
        lambda col, lo, width: Between(col, lo, lo + width),
        st.sampled_from(["a", "b", "c"]),
        st.integers(min_value=-25, max_value=25),
        st.integers(min_value=0, max_value=20),
    )
    ins = st.builds(
        In,
        st.sampled_from(["a", "b", "c"]),
        st.lists(st.integers(min_value=-25, max_value=25), min_size=1, max_size=5),
    )
    return st.one_of(comparisons, betweens, ins)


def predicates():
    return st.recursive(
        atomic_predicates(),
        lambda children: st.one_of(
            st.builds(lambda kids: And(tuple(kids)), st.lists(children, min_size=1, max_size=3)),
            st.builds(lambda kids: Or(tuple(kids)), st.lists(children, min_size=1, max_size=3)),
            st.builds(Not, children),
        ),
        max_leaves=6,
    )


def scalar_masks(metadata, predicate):
    may = np.array([predicate.may_match(p) for p in metadata.partitions], dtype=bool)
    all_ = np.array([predicate.matches_all(p) for p in metadata.partitions], dtype=bool)
    return may, all_


@given(
    data_seed=st.integers(0, 10_000),
    assign_seed=st.integers(0, 10_000),
    n=st.integers(1, 300),
    num_partitions=st.integers(1, 12),
    predicate=predicates(),
)
@settings(max_examples=300, deadline=None)
def test_random_assignment_masks_equal_scalar(data_seed, assign_seed, n, num_partitions, predicate):
    table = make_table(data_seed, n)
    assignment = np.random.default_rng(assign_seed).integers(0, num_partitions, size=n)
    metadata = build_layout_metadata(table, assignment)
    index = ZoneMapIndex(metadata)
    may, all_ = index.masks(predicate)
    expected_may, expected_all = scalar_masks(metadata, predicate)
    np.testing.assert_array_equal(may, expected_may)
    np.testing.assert_array_equal(all_, expected_all)
    assert index.accessed_fraction(predicate) == metadata.accessed_fraction(predicate)


@given(
    data_seed=st.integers(0, 10_000),
    kind=st.sampled_from(["range", "qdtree"]),
    predicate_list=st.lists(predicates(), min_size=1, max_size=8),
)
@settings(max_examples=60, deadline=None)
def test_builder_layout_prune_matrix_equals_scalar(data_seed, kind, predicate_list):
    table = make_table(data_seed, 250)
    rng = np.random.default_rng(data_seed)
    from repro.queries import Query

    workload = [Query(predicate=p) for p in predicate_list]
    if kind == "range":
        layout = RangeLayoutBuilder("a").build(table, workload, 6, rng)
    else:
        layout = QdTreeBuilder().build(table, workload, 6, rng)
    metadata = layout.metadata_for(table)
    index = ZoneMapIndex(metadata)
    matrix = index.prune_matrix([q.predicate for q in workload])
    for row, query in zip(matrix, workload, strict=True):
        np.testing.assert_array_equal(row, scalar_masks(metadata, query.predicate)[0])
    fractions = index.accessed_fractions([q.predicate for q in workload])
    expected = np.array([metadata.accessed_fraction(q.predicate) for q in workload])
    np.testing.assert_array_equal(fractions, expected)
