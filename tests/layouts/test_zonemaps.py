"""Unit tests for the columnar zone-map cost engine.

The compiled fast path must be a bit-for-bit drop-in for the scalar
``may_match`` / ``matches_all`` oracle; these tests pin the exact
equivalence on hand-picked structures, edge cases (empty layouts, unknown
columns, distinct-set caps), and the fallback for predicates the compiler
cannot lower.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.layouts import ZoneMapIndex, compile_zone_maps, prune_matrix
from repro.layouts.metadata import (
    ColumnStats,
    DISTINCT_SET_CAP,
    LayoutMetadata,
    PartitionMetadata,
    build_layout_metadata,
)
from repro.queries import between, conjunction, eq, ge, isin, lt, ne
from repro.queries.predicates import (
    AlwaysFalse,
    AlwaysTrue,
    And,
    Between,
    Comparison,
    In,
    Not,
    Or,
    Predicate,
)


def scalar_masks(metadata, predicate):
    may = np.array([predicate.may_match(p) for p in metadata.partitions], dtype=bool)
    all_ = np.array([predicate.matches_all(p) for p in metadata.partitions], dtype=bool)
    return may, all_


def assert_equivalent(metadata, predicate):
    index = ZoneMapIndex(metadata)
    may, all_ = index.masks(predicate)
    expected_may, expected_all = scalar_masks(metadata, predicate)
    np.testing.assert_array_equal(may, expected_may)
    np.testing.assert_array_equal(all_, expected_all)
    assert index.accessed_fraction(predicate) == metadata.accessed_fraction(predicate)


@pytest.fixture
def striped_metadata(simple_table):
    assignment = np.arange(simple_table.num_rows) % 6
    return build_layout_metadata(simple_table, assignment)


@pytest.fixture
def sorted_metadata(simple_table):
    order = np.argsort(simple_table["x"], kind="stable")
    assignment = np.empty(simple_table.num_rows, dtype=np.int64)
    assignment[order] = np.arange(simple_table.num_rows) * 8 // simple_table.num_rows
    return build_layout_metadata(simple_table, assignment)


ATOMS = [
    between("x", 10.0, 20.0),
    between("y", -5, 3),
    eq("color", 1),
    ne("color", 2),
    lt("x", 0.5),
    ge("y", 49),
    isin("color", [0, 2]),
    isin("y", [1, 7, 12]),
    Comparison("x", "==", 42.0),
    Comparison("x", "<=", 100.0),
    Comparison("y", ">", 25),
    AlwaysTrue(),
    AlwaysFalse(),
]


@pytest.mark.parametrize("predicate", ATOMS, ids=repr)
def test_atoms_match_scalar_oracle(striped_metadata, sorted_metadata, predicate):
    assert_equivalent(striped_metadata, predicate)
    assert_equivalent(sorted_metadata, predicate)


def test_compound_trees_match_scalar_oracle(sorted_metadata):
    trees = [
        And((between("x", 10.0, 60.0), eq("color", 0))),
        Or((lt("x", 5.0), ge("x", 95.0), isin("color", [1]))),
        Not(between("x", 0.0, 50.0)),
        Not(And((isin("color", [0, 1, 2]), between("y", 0, 50)))),
        And((Not(eq("color", 2)), Or((between("y", 0, 10), between("y", 40, 50))))),
        conjunction([between("x", 20.0, 30.0), ne("y", 7)]),
    ]
    for predicate in trees:
        assert_equivalent(sorted_metadata, predicate)


def test_prune_matrix_shape_and_rows(sorted_metadata):
    index = ZoneMapIndex(sorted_metadata)
    predicates = [between("x", float(i * 10), float(i * 10 + 15)) for i in range(5)]
    matrix = index.prune_matrix(predicates)
    assert matrix.shape == (5, sorted_metadata.num_partitions)
    for row, predicate in zip(matrix, predicates, strict=True):
        np.testing.assert_array_equal(row, scalar_masks(sorted_metadata, predicate)[0])
    # Module-level convenience wrapper agrees.
    np.testing.assert_array_equal(matrix, prune_matrix(sorted_metadata, predicates))


def test_accessed_fractions_batched_equals_scalar(sorted_metadata):
    index = compile_zone_maps(sorted_metadata)
    predicates = [between("x", float(i), float(i + 7)) for i in range(0, 90, 9)]
    fractions = index.accessed_fractions(predicates)
    expected = np.array([sorted_metadata.accessed_fraction(p) for p in predicates])
    np.testing.assert_array_equal(fractions, expected)


def test_empty_layout():
    metadata = LayoutMetadata(partitions=())
    index = ZoneMapIndex(metadata)
    predicate = between("x", 0.0, 1.0)
    assert index.may_match_mask(predicate).shape == (0,)
    assert index.accessed_fraction(predicate) == 0.0
    assert index.prune_matrix([predicate]).shape == (1, 0)
    assert index.accessed_fractions([]).shape == (0,)


def test_unknown_column_is_never_pruned(striped_metadata):
    for predicate in (
        between("nope", 0, 1),
        eq("nope", 3),
        isin("nope", [1, 2]),
        Not(eq("nope", 3)),
    ):
        assert_equivalent(striped_metadata, predicate)
        may = ZoneMapIndex(striped_metadata).may_match_mask(predicate)
        assert may.all()  # no stats => no pruning, soundly


def test_column_missing_from_some_partitions_only():
    """Hand-built metadata where a column has stats in one partition only."""
    partitions = (
        PartitionMetadata(0, 10, {"a": ColumnStats(0.0, 5.0)}),
        PartitionMetadata(1, 10, {"a": ColumnStats(6.0, 9.0), "b": ColumnStats(1.0, 2.0)}),
    )
    metadata = LayoutMetadata(partitions=partitions)
    for predicate in (between("b", 0.0, 0.5), eq("b", 1.5), Not(between("b", 0.0, 3.0))):
        assert_equivalent(metadata, predicate)


def test_distinct_sets_beyond_cap_fall_back_to_minmax(rng):
    """Partitions whose distinct set exceeds the cap prune by min/max only."""
    from repro.storage import ColumnSpec, Schema, Table

    vocab = tuple(f"v{i}" for i in range(DISTINCT_SET_CAP * 3))
    schema = Schema(columns=(ColumnSpec("c", "categorical", vocab),))
    n = 4000
    table = Table(
        schema, {"c": rng.integers(0, len(vocab), size=n).astype(np.int32)}
    )
    assignment = np.arange(n) % 4  # each partition sees ~all codes: no distinct sets
    metadata = build_layout_metadata(table, assignment)
    assert all(p.stats["c"].distinct is None for p in metadata.partitions)
    for predicate in (eq("c", 5), isin("c", [1, 100]), ne("c", 0)):
        assert_equivalent(metadata, predicate)


def test_mixed_distinct_and_minmax_partitions(rng):
    """Some partitions carry distinct sets, others only min/max."""
    from repro.storage import ColumnSpec, Schema, Table

    vocab = tuple(f"v{i}" for i in range(DISTINCT_SET_CAP * 2))
    schema = Schema(columns=(ColumnSpec("c", "categorical", vocab),))
    narrow = np.repeat(np.arange(8, dtype=np.int32), 50)  # distinct set kept
    wide = rng.integers(0, len(vocab), size=4 * DISTINCT_SET_CAP).astype(np.int32)
    values = np.concatenate([narrow, wide])
    assignment = np.concatenate(
        [np.zeros(len(narrow), dtype=np.int64), np.ones(len(wide), dtype=np.int64)]
    )
    table = Table(schema, {"c": values})
    metadata = build_layout_metadata(table, assignment)
    kinds = {p.partition_id: p.stats["c"].distinct is not None for p in metadata.partitions}
    assert kinds[0] and not kinds[1]
    for predicate in (eq("c", 3), eq("c", 9), isin("c", [2, 40]), Not(isin("c", list(range(8))))):
        assert_equivalent(metadata, predicate)


def test_values_absent_from_every_distinct_set():
    partitions = (
        PartitionMetadata(0, 10, {"c": ColumnStats(0, 5, frozenset({0, 2, 5}))}),
        PartitionMetadata(1, 10, {"c": ColumnStats(1, 7, frozenset({1, 3, 7}))}),
    )
    metadata = LayoutMetadata(partitions=partitions)
    for predicate in (eq("c", 4), isin("c", [4, 6]), ne("c", 4), Not(eq("c", 2))):
        assert_equivalent(metadata, predicate)
    assert not ZoneMapIndex(metadata).may_match_mask(eq("c", 4)).any()


class OddEvenPredicate(Predicate):
    """A user-defined predicate the compiler cannot lower."""

    __slots__ = ("column",)

    def __init__(self, column: str):
        self.column = column

    def evaluate(self, columns):
        return columns[self.column] % 2 == 0

    def may_match(self, metadata):
        stats = metadata.stats.get(self.column)
        if stats is None or stats.distinct is None:
            return True
        return any(v % 2 == 0 for v in stats.distinct)

    def matches_all(self, metadata):
        stats = metadata.stats.get(self.column)
        if stats is None or stats.distinct is None:
            return False
        return all(v % 2 == 0 for v in stats.distinct)

    def columns(self):
        return frozenset((self.column,))

    def negate(self):
        return Not(self)

    def cache_key(self):
        return ("oddeven", self.column)


def test_unknown_predicate_type_falls_back_to_scalar_oracle():
    partitions = (
        PartitionMetadata(0, 10, {"c": ColumnStats(0, 4, frozenset({0, 2, 4}))}),
        PartitionMetadata(1, 10, {"c": ColumnStats(1, 5, frozenset({1, 3, 5}))}),
        PartitionMetadata(2, 10, {"c": ColumnStats(0, 9)}),
    )
    metadata = LayoutMetadata(partitions=partitions)
    custom = OddEvenPredicate("c")
    assert_equivalent(metadata, custom)
    # Also when nested inside compiled combinators.
    assert_equivalent(metadata, And((custom, between("c", 0, 9))))
    assert_equivalent(metadata, Not(custom))


def test_float64_lossy_values_fall_back_to_scalar_oracle():
    """Regression: ints >= 2**53 don't round-trip through float64; casting
    them made pruning unsound (may_match False where the oracle says True)."""
    big = 2**53
    partitions = (
        PartitionMetadata(0, 10, {"x": ColumnStats(big, big)}),
        PartitionMetadata(1, 10, {"x": ColumnStats(0, 100)}),
    )
    metadata = LayoutMetadata(partitions=partitions)
    for predicate in (
        lt("x", big + 1),  # scalar: partition 0 may match (big < big + 1)
        eq("x", big + 1),
        between("x", big - 1, big + 1),
        Not(lt("x", big + 1)),
    ):
        assert_equivalent(metadata, predicate)
    assert ZoneMapIndex(metadata).may_match_mask(lt("x", big + 1))[0]


def test_float64_lossy_distinct_values_fall_back_exactly():
    """Distinct-set bitmaps must not collapse adjacent huge ints."""
    big = 2**53
    partitions = (
        PartitionMetadata(0, 10, {"c": ColumnStats(0, 2**54, frozenset({0, big + 1, 2**54}))}),
        PartitionMetadata(1, 10, {"c": ColumnStats(0, 2**54, frozenset({0, 2**54}))}),
    )
    metadata = LayoutMetadata(partitions=partitions)
    for predicate in (eq("c", big + 1), isin("c", [big + 1]), Not(isin("c", [0]))):
        assert_equivalent(metadata, predicate)


def test_non_numeric_zone_boundaries_fall_back_to_scalar_oracle():
    partitions = (
        PartitionMetadata(0, 10, {"s": ColumnStats("apple", "mango")}),
        PartitionMetadata(1, 10, {"s": ColumnStats("melon", "zebra")}),
    )
    metadata = LayoutMetadata(partitions=partitions)
    for predicate in (
        Comparison("s", "<", "m"),
        Between("s", "a", "c"),
        In("s", ["apple", "zebra"]),
    ):
        assert_equivalent(metadata, predicate)


def test_row_weighting_matches_oracle():
    partitions = (
        PartitionMetadata(0, 1, {"a": ColumnStats(0.0, 1.0)}),
        PartitionMetadata(1, 999, {"a": ColumnStats(2.0, 3.0)}),
    )
    metadata = LayoutMetadata(partitions=partitions)
    index = ZoneMapIndex(metadata)
    predicate = between("a", 0.0, 0.5)
    assert index.accessed_fraction(predicate) == pytest.approx(0.001)
    assert index.accessed_fraction(predicate) == metadata.accessed_fraction(predicate)


def test_relevant_partition_ids_matches_relevant_partitions(sorted_metadata):
    index = ZoneMapIndex(sorted_metadata)
    predicate = between("x", 30.0, 45.0)
    expected = {p.partition_id for p in sorted_metadata.relevant_partitions(predicate)}
    assert index.relevant_partition_ids(predicate) == expected


def test_masks_are_cached_per_predicate_identity(sorted_metadata):
    index = ZoneMapIndex(sorted_metadata)
    first = index.masks(between("x", 0.0, 10.0))
    second = index.masks(between("x", 0.0, 10.0))
    assert first[0] is second[0] and first[1] is second[1]


def test_mask_cache_is_bounded(sorted_metadata):
    """A stream minting a fresh predicate per query must not grow the cache
    without limit (the cost path memoizes floats upstream instead)."""
    index = ZoneMapIndex(sorted_metadata)
    for i in range(ZoneMapIndex.MASK_CACHE_CAP * 2 + 5):
        index.may_match_mask(between("x", float(i), float(i) + 0.5))
    assert len(index._may_cache) <= ZoneMapIndex.MASK_CACHE_CAP


def test_cost_entry_points_do_not_populate_mask_cache(sorted_metadata):
    index = ZoneMapIndex(sorted_metadata)
    index.accessed_fraction(between("x", 0.0, 10.0))
    index.accessed_fractions([between("x", 20.0, 30.0)])
    index.prune_matrix([between("x", 40.0, 50.0)])
    assert not index._may_cache and not index._all_cache


def test_mask_cache_lru_keeps_hot_entries(sorted_metadata):
    """Regression: the caches used to clear wholesale at the cap, evicting
    the hot working set along with the one-off predicates.  Eviction is
    now LRU: a predicate re-read between fresh insertions must survive a
    stream of MASK_CACHE_CAP new predicates."""
    index = ZoneMapIndex(sorted_metadata)
    hot = between("x", 0.0, 10.0)
    hot_mask = index.may_match_mask(hot)
    for i in range(ZoneMapIndex.MASK_CACHE_CAP * 2):
        index.may_match_mask(between("x", float(i), float(i) + 0.5))
        assert index.may_match_mask(hot) is hot_mask  # still cached, same array
    assert len(index._may_cache) <= ZoneMapIndex.MASK_CACHE_CAP


def test_mask_cache_evicts_oldest_first(sorted_metadata):
    index = ZoneMapIndex(sorted_metadata)
    first = between("x", 0.0, 1.0)
    index.may_match_mask(first)
    # Fill to the cap without touching `first` again: it is the oldest.
    for i in range(ZoneMapIndex.MASK_CACHE_CAP):
        index.may_match_mask(between("y", float(i), float(i) + 0.5))
    assert first.cache_key() not in index._may_cache
    assert len(index._may_cache) <= ZoneMapIndex.MASK_CACHE_CAP
