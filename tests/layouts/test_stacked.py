"""Unit tests for the stacked state space (3-D batched evaluation).

The contract: for every live layout, the tensor slice
``prune_tensor(compiled)[i, :, :P_i]`` is bit-for-bit the per-layout
``compiled.prune_matrix(index_i)`` (and hence the scalar oracle), across
ragged partition counts, residue layouts, tombstones, compaction, width
growth, in-place slab updates, and shared-union bitmap re-coding.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.layouts import (
    CompiledWorkload,
    HashLayoutBuilder,
    QdTreeBuilder,
    RangeLayoutBuilder,
    StackedStateSpace,
    ZOrderLayoutBuilder,
    ZoneMapIndex,
)
from repro.layouts.metadata import (
    ColumnStats,
    LayoutMetadata,
    PartitionMetadata,
    build_layout_metadata,
)
from repro.queries import Query, between, eq, ge, isin, lt, ne
from repro.queries.predicates import And, Comparison, Not, Or
from repro.storage import ColumnSpec, Schema, Table

_SCHEMA = Schema(
    columns=(
        ColumnSpec("a", "numeric"),
        ColumnSpec("b", "numeric"),
        ColumnSpec("c", "categorical", tuple(f"v{i}" for i in range(8))),
    )
)

_PROBES = [
    between("a", -10, 10),
    lt("b", 20.0),
    ge("a", 0),
    eq("c", 3),
    ne("c", 1),
    isin("c", [0, 5, 7]),
    And((between("b", 0.0, 30.0), eq("c", 2))),
    Or((lt("a", -15), ge("a", 15))),
    Not(between("a", -5, 5)),
    eq("a", 3),
    eq("a", 3),  # duplicate atom: exercises the dedup plan
    lt("missing", 7.0),
]


def make_table(seed: int, n: int = 400) -> Table:
    rng = np.random.default_rng(seed)
    return Table(
        _SCHEMA,
        {
            "a": rng.integers(-20, 21, size=n).astype(np.int64),
            "b": rng.uniform(-5.0, 45.0, size=n),
            "c": rng.integers(0, 8, size=n).astype(np.int32),
        },
    )


def random_index(table: Table, seed: int, parts: int) -> ZoneMapIndex:
    assignment = np.random.default_rng(seed).integers(0, parts, size=table.num_rows)
    return ZoneMapIndex(build_layout_metadata(table, assignment))


def assert_stack_matches(stack: StackedStateSpace, compiled: CompiledWorkload):
    """Every live slice equals the per-layout compiled pass, bit for bit."""
    ids = stack.layout_ids
    may = stack.prune_tensor(compiled)
    all_ = stack.matches_all_tensor(compiled)
    fractions = stack.accessed_fractions(compiled)
    assert may.shape == (len(ids), compiled.num_queries, stack.partition_width)
    for position, layout_id in enumerate(ids):
        index = stack.index_for(layout_id)
        num = index.num_partitions
        np.testing.assert_array_equal(
            may[position, :, :num], compiled.prune_matrix(index)
        )
        np.testing.assert_array_equal(
            all_[position, :, :num], compiled.matches_all_matrix(index)
        )
        np.testing.assert_array_equal(
            fractions[position], compiled.accessed_fractions(index)
        )


class TestEquivalence:
    def test_ragged_partition_counts(self):
        table = make_table(0)
        stack = StackedStateSpace()
        for i, parts in enumerate([4, 9, 2, 16, 1]):
            stack.add_layout(f"L{i}", random_index(table, i, parts))
        assert_stack_matches(stack, CompiledWorkload(_PROBES))

    def test_single_layout_stack(self):
        table = make_table(1)
        stack = StackedStateSpace({"only": random_index(table, 1, 6)})
        assert len(stack) == 1
        assert_stack_matches(stack, CompiledWorkload(_PROBES))

    def test_sixty_four_layout_stack(self):
        table = make_table(2, n=200)
        stack = StackedStateSpace(
            {f"L{i}": random_index(table, i, 1 + i % 11) for i in range(64)}
        )
        assert len(stack) == 64
        assert_stack_matches(stack, CompiledWorkload(_PROBES))

    def test_builder_layout_mix(self):
        """qd-tree / range / hash / z-order layouts stacked together."""
        table = make_table(3)
        rng = np.random.default_rng(3)
        workload = [Query(predicate=p) for p in _PROBES[:6]]
        builders = [
            QdTreeBuilder(),
            RangeLayoutBuilder("a"),
            HashLayoutBuilder("c"),
            ZOrderLayoutBuilder(num_columns=2, default_columns=("a", "b")),
        ]
        stack = StackedStateSpace()
        for builder in builders:
            layout = builder.build(table, workload, 6, rng)
            stack.add_layout(layout.layout_id, ZoneMapIndex(layout.metadata_for(table)))
        assert_stack_matches(stack, CompiledWorkload(_PROBES))

    def test_repeat_evaluations_are_stable(self):
        """Scratch-buffer reuse must not leak state between evaluations."""
        table = make_table(4)
        stack = StackedStateSpace(
            {f"L{i}": random_index(table, 10 + i, 5 + i) for i in range(3)}
        )
        first = CompiledWorkload(_PROBES)
        other = CompiledWorkload([eq("c", 5), between("b", 10.0, 12.0)])
        before = stack.prune_tensor(first).copy()
        assert_stack_matches(stack, other)
        assert_stack_matches(stack, first)
        np.testing.assert_array_equal(stack.prune_tensor(first), before)

    def test_empty_workload_and_empty_stack(self):
        table = make_table(5)
        compiled = CompiledWorkload([])
        stack = StackedStateSpace()
        assert stack.prune_tensor(compiled).shape == (0, 0, 0)
        stack.add_layout("L0", random_index(table, 0, 4))
        tensor = stack.prune_tensor(compiled)
        assert tensor.shape == (1, 0, stack.partition_width)
        assert_stack_matches(stack, compiled)

    def test_zero_partition_layout(self):
        empty = ZoneMapIndex(LayoutMetadata(partitions=()))
        stack = StackedStateSpace({"empty": empty})
        compiled = CompiledWorkload(_PROBES)
        assert stack.prune_tensor(compiled).shape == (1, len(_PROBES), 0)
        np.testing.assert_array_equal(
            stack.accessed_fractions(compiled)[0], np.zeros(len(_PROBES))
        )


class TestResidueLayouts:
    def test_string_column_falls_back_per_layout(self):
        """String-statted columns make a layout a residue layout for the
        predicates touching them: evaluated per layout, still exact."""
        stringy = LayoutMetadata(
            partitions=(
                PartitionMetadata(0, 7, {"s": ColumnStats("apple", "mango")}),
                PartitionMetadata(1, 4, {"s": ColumnStats("melon", "zebra")}),
            )
        )
        other = LayoutMetadata(
            partitions=(
                PartitionMetadata(0, 6, {"s": ColumnStats("aa", "cc")}),
                PartitionMetadata(1, 5, {}),
            )
        )
        compiled = CompiledWorkload(
            [Comparison("s", "<", "m"), Comparison("s", "==", "melon")]
        )
        stack = StackedStateSpace({"str1": ZoneMapIndex(stringy)})
        stack.add_layout("str2", ZoneMapIndex(other))
        assert_stack_matches(stack, compiled)

    def test_shared_union_recode_across_layouts(self):
        """Distinct unions differ per layout: bitmaps re-code onto one union."""
        first = LayoutMetadata(
            partitions=(
                PartitionMetadata(0, 10, {"c": ColumnStats(1, 3, frozenset({1, 3}))}),
                PartitionMetadata(1, 10, {"c": ColumnStats(2, 2, frozenset({2}))}),
            )
        )
        second = LayoutMetadata(
            partitions=(
                PartitionMetadata(0, 7, {"c": ColumnStats(3, 9, frozenset({3, 9}))}),
                PartitionMetadata(1, 4, {"c": ColumnStats(5, 5, frozenset({5}))}),
            )
        )
        compiled = CompiledWorkload(
            [eq("c", 3), ne("c", 9), isin("c", [2, 5]), isin("c", [1, 9])]
        )
        stack = StackedStateSpace(
            {"A": ZoneMapIndex(first), "B": ZoneMapIndex(second)}
        )
        assert_stack_matches(stack, compiled)

    def test_column_missing_from_some_layouts(self):
        with_b = LayoutMetadata(
            partitions=(PartitionMetadata(0, 10, {"b": ColumnStats(0.0, 9.0)}),)
        )
        without_b = LayoutMetadata(
            partitions=(PartitionMetadata(0, 10, {"a": ColumnStats(0.0, 9.0)}),)
        )
        compiled = CompiledWorkload([between("b", 1.0, 2.0), eq("b", 5)])
        stack = StackedStateSpace(
            {"with": ZoneMapIndex(with_b), "without": ZoneMapIndex(without_b)}
        )
        assert_stack_matches(stack, compiled)


class TestMaintenance:
    def test_add_does_not_touch_survivors(self):
        table = make_table(6)
        stack = StackedStateSpace({"L0": random_index(table, 0, 6)})
        compiled = CompiledWorkload(_PROBES)
        stack.prune_tensor(compiled)  # build slabs
        stack.add_layout("L1", random_index(table, 1, 6))
        stack.add_layout("wide", random_index(table, 2, 24))  # grows the width
        assert stack.partition_width >= 24
        assert_stack_matches(stack, compiled)

    def test_tombstone_then_compact(self):
        table = make_table(7)
        stack = StackedStateSpace(
            {f"L{i}": random_index(table, i, 4 + i) for i in range(5)}
        )
        compiled = CompiledWorkload(_PROBES)
        stack.prune_tensor(compiled)
        stack.remove_layout("L1")
        assert "L1" not in stack
        assert_stack_matches(stack, compiled)
        stack.remove_layout("L3")
        stack.remove_layout("L0")  # dead (3) > live (2): compaction
        assert stack.layout_ids == ["L2", "L4"]
        assert_stack_matches(stack, compiled)
        stack.add_layout("L5", random_index(table, 50, 3))
        assert_stack_matches(stack, compiled)

    def test_remove_unknown_raises(self):
        stack = StackedStateSpace()
        with pytest.raises(KeyError):
            stack.remove_layout("nope")
        stack.discard("nope")  # no-op by contract

    def test_duplicate_add_raises(self):
        table = make_table(8)
        stack = StackedStateSpace({"L0": random_index(table, 0, 4)})
        with pytest.raises(ValueError):
            stack.add_layout("L0", random_index(table, 1, 4))

    def test_unknown_layout_id_in_tensor_raises(self):
        table = make_table(9)
        stack = StackedStateSpace({"L0": random_index(table, 0, 4)})
        with pytest.raises(KeyError):
            stack.prune_tensor(CompiledWorkload(_PROBES), ["ghost"])

    def test_update_layout_in_place(self):
        table = make_table(10)
        stack = StackedStateSpace(
            {"L0": random_index(table, 0, 6), "L1": random_index(table, 1, 6)}
        )
        compiled = CompiledWorkload(_PROBES)
        stack.prune_tensor(compiled)  # slabs warm, update must refresh them
        stack.update_layout("L0", random_index(table, 99, 10))
        assert stack.index_for("L0").num_partitions <= stack.partition_width
        assert_stack_matches(stack, compiled)

    def test_layout_subset_selection(self):
        table = make_table(11)
        stack = StackedStateSpace(
            {f"L{i}": random_index(table, i, 5) for i in range(4)}
        )
        compiled = CompiledWorkload(_PROBES)
        subset = stack.prune_tensor(compiled, ["L2", "L0"])
        assert subset.shape[0] == 2
        np.testing.assert_array_equal(
            subset[0, :, : stack.index_for("L2").num_partitions],
            compiled.prune_matrix(stack.index_for("L2")),
        )
        np.testing.assert_array_equal(
            subset[1, :, : stack.index_for("L0").num_partitions],
            compiled.prune_matrix(stack.index_for("L0")),
        )
        np.testing.assert_array_equal(
            stack.prune_matrix(compiled, "L2"),
            compiled.prune_matrix(stack.index_for("L2")),
        )


class TestFusedFractionContraction:
    """The fused einsum contraction equals the per-layout matvec, bit for bit."""

    def _fractions_per_layout(self, stack, compiled, ids):
        out = np.zeros((len(ids), compiled.num_queries), dtype=np.float64)
        for row, layout_id in enumerate(ids):
            index = stack.index_for(layout_id)
            out[row] = compiled.accessed_fractions(index)
        return out

    def test_narrow_sample_takes_fused_path(self):
        table = make_table(20)
        stack = StackedStateSpace(
            {f"L{i}": random_index(table, i, 3 + i) for i in range(5)}
        )
        compiled = CompiledWorkload(_PROBES[:3])  # below the cutoff
        assert compiled.num_queries <= StackedStateSpace.FUSED_FRACTION_QUERY_CUTOFF
        np.testing.assert_array_equal(
            stack.accessed_fractions(compiled),
            self._fractions_per_layout(stack, compiled, stack.layout_ids),
        )

    def test_wide_sample_takes_loop_path(self):
        table = make_table(21)
        stack = StackedStateSpace(
            {f"L{i}": random_index(table, i, 4) for i in range(3)}
        )
        probes = _PROBES + [between("a", float(i), float(i + 2)) for i in range(10)]
        compiled = CompiledWorkload(probes)
        assert compiled.num_queries > StackedStateSpace.FUSED_FRACTION_QUERY_CUTOFF
        np.testing.assert_array_equal(
            stack.accessed_fractions(compiled),
            self._fractions_per_layout(stack, compiled, stack.layout_ids),
        )

    def test_fractions_tensor_direct(self):
        table = make_table(22)
        stack = StackedStateSpace(
            {f"L{i}": random_index(table, i, 2 + 3 * i) for i in range(4)}
        )
        compiled = CompiledWorkload(_PROBES)
        ids = ["L2", "L0"]  # subset, out of slot order
        tensor = stack.prune_tensor(compiled, ids)
        np.testing.assert_array_equal(
            stack.fractions_tensor(tensor, ids),
            self._fractions_per_layout(stack, compiled, ids),
        )

    def test_fused_path_after_tombstones(self):
        table = make_table(23)
        stack = StackedStateSpace(
            {f"L{i}": random_index(table, i, 4) for i in range(4)}
        )
        compiled = CompiledWorkload(_PROBES[:2])
        stack.accessed_fractions(compiled)  # warm the counts cache
        stack.remove_layout("L1")
        np.testing.assert_array_equal(
            stack.accessed_fractions(compiled),
            self._fractions_per_layout(stack, compiled, stack.layout_ids),
        )
        # growth after removal invalidates the cached slab too
        stack.add_layout("wide", random_index(table, 50, 9))
        np.testing.assert_array_equal(
            stack.accessed_fractions(compiled),
            self._fractions_per_layout(stack, compiled, stack.layout_ids),
        )

    def test_empty_layout_yields_zero_rows(self):
        table = make_table(24)
        empty = ZoneMapIndex(LayoutMetadata(partitions=()))
        stack = StackedStateSpace(
            {"live": random_index(table, 0, 4), "empty": empty}
        )
        compiled = CompiledWorkload(_PROBES[:3])
        fractions = stack.accessed_fractions(compiled)
        position = stack.layout_ids.index("empty")
        np.testing.assert_array_equal(
            fractions[position], np.zeros(compiled.num_queries)
        )
        assert_stack_matches(stack, compiled)
