"""Tests for Qd-tree construction and routing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.layouts import QdTreeBuilder, QdTreeLayout, extract_cut_predicates
from repro.layouts.qdtree import QdTreeNode
from repro.queries import (
    And,
    Between,
    Comparison,
    Not,
    Or,
    Query,
    between,
    conjunction,
    eq,
    isin,
    lt,
)


def make_workload(rng, n=30):
    """Queries concentrated on x-ranges and color equality."""
    queries = []
    for _ in range(n):
        low = float(rng.uniform(0, 90))
        queries.append(Query(predicate=between("x", low, low + 10.0)))
        queries.append(Query(predicate=eq("color", int(rng.integers(3)))))
    return queries


class TestCutExtraction:
    def test_comparison_extracted(self):
        cuts = extract_cut_predicates([Query(predicate=lt("x", 5.0))])
        assert cuts == [lt("x", 5.0)]

    def test_between_yields_boundary_comparisons(self):
        cuts = extract_cut_predicates([Query(predicate=between("x", 1.0, 2.0))])
        keys = {c.cache_key() for c in cuts}
        assert Comparison("x", ">=", 1.0).cache_key() in keys
        assert Comparison("x", "<=", 2.0).cache_key() in keys

    def test_in_extracted_whole(self):
        cuts = extract_cut_predicates([Query(predicate=isin("color", (0, 1)))])
        assert cuts == [isin("color", (0, 1))]

    def test_nested_and_or_not(self):
        predicate = Not(Or((And((lt("x", 1.0), eq("y", 2))), lt("x", 3.0))))
        cuts = extract_cut_predicates([Query(predicate=predicate)])
        assert len(cuts) == 3

    def test_deduplication(self):
        queries = [Query(predicate=lt("x", 5.0)), Query(predicate=lt("x", 5.0))]
        assert len(extract_cut_predicates(queries)) == 1

    def test_column_whitelist(self):
        queries = [Query(predicate=And((lt("x", 5.0), eq("secret", 1))))]
        cuts = extract_cut_predicates(queries, allowed_columns=["x"])
        assert cuts == [lt("x", 5.0)]


class TestQdTreeNode:
    def test_leaf_properties(self):
        leaf = QdTreeNode(partition_id=3)
        assert leaf.is_leaf
        assert leaf.depth() == 1
        assert leaf.leaf_count() == 1

    def test_inner_counts(self):
        root = QdTreeNode(
            cut=lt("x", 1.0),
            true_child=QdTreeNode(partition_id=0),
            false_child=QdTreeNode(
                cut=lt("x", 2.0),
                true_child=QdTreeNode(partition_id=1),
                false_child=QdTreeNode(partition_id=2),
            ),
        )
        assert root.leaf_count() == 3
        assert root.depth() == 3


class TestQdTreeBuilder:
    def test_routing_is_total_and_in_range(self, simple_table, rng):
        layout = QdTreeBuilder().build(simple_table, make_workload(rng), 8, rng)
        assignment = layout.assign(simple_table)
        assert len(assignment) == simple_table.num_rows
        assert assignment.min() >= 0
        assert assignment.max() < layout.num_partitions

    def test_leaf_budget_respected(self, simple_table, rng):
        layout = QdTreeBuilder().build(simple_table, make_workload(rng), 8, rng)
        assert 1 <= layout.num_partitions <= 8

    def test_routing_deterministic(self, simple_table, rng):
        layout = QdTreeBuilder().build(simple_table, make_workload(rng), 8, rng)
        assert np.array_equal(layout.assign(simple_table), layout.assign(simple_table))

    def test_no_workload_gives_single_leaf(self, simple_table, rng):
        layout = QdTreeBuilder().build(simple_table, [], 8, rng)
        assert layout.num_partitions == 1

    def test_min_leaf_fraction_validation(self):
        with pytest.raises(ValueError):
            QdTreeBuilder(min_leaf_fraction=0.0)
        with pytest.raises(ValueError):
            QdTreeBuilder(min_leaf_fraction=1.5)

    def test_min_leaf_size_enforced(self, simple_table, rng):
        builder = QdTreeBuilder(min_leaf_fraction=1.0)
        layout = builder.build(simple_table, make_workload(rng), 4, rng)
        counts = np.bincount(layout.assign(simple_table), minlength=layout.num_partitions)
        assert counts[counts > 0].min() >= simple_table.num_rows / 4 * 0.5

    def test_skips_more_than_round_robin(self, simple_table, rng):
        """The whole point: workload-aware cuts beat striping on skipping."""
        workload = make_workload(rng)
        layout = QdTreeBuilder().build(simple_table, workload, 8, rng)
        metadata = layout.metadata_for(simple_table)
        striped = np.arange(simple_table.num_rows) % 8
        from repro.layouts.metadata import build_layout_metadata

        striped_metadata = build_layout_metadata(simple_table, striped)
        test_queries = make_workload(np.random.default_rng(99))
        qd_cost = np.mean(
            [metadata.accessed_fraction(q.predicate) for q in test_queries]
        )
        rr_cost = np.mean(
            [striped_metadata.accessed_fraction(q.predicate) for q in test_queries]
        )
        assert qd_cost < rr_cost

    def test_adapts_to_workload_columns(self, simple_table, rng):
        """Trees built for different workloads should partition differently."""
        x_heavy = [
            Query(predicate=between("x", float(i), float(i) + 5.0)) for i in range(0, 90, 5)
        ]
        color_heavy = [Query(predicate=eq("color", i % 3)) for i in range(20)]
        x_layout = QdTreeBuilder().build(simple_table, x_heavy, 6, rng)
        color_layout = QdTreeBuilder().build(simple_table, color_heavy, 6, rng)
        x_query = between("x", 20.0, 25.0)
        x_cost_on_x = x_layout.metadata_for(simple_table).accessed_fraction(x_query)
        x_cost_on_color = color_layout.metadata_for(simple_table).accessed_fraction(x_query)
        assert x_cost_on_x < x_cost_on_color

    def test_generalizes_from_sample(self, simple_table, rng):
        sample = simple_table.sample(0.2, rng)
        workload = make_workload(rng)
        layout = QdTreeBuilder().build(sample, workload, 8, rng)
        assignment = layout.assign(simple_table)
        counts = np.bincount(assignment, minlength=layout.num_partitions)
        assert counts.max() < simple_table.num_rows  # actually splits

    def test_describe(self, simple_table, rng):
        layout = QdTreeBuilder().build(simple_table, make_workload(rng), 8, rng)
        assert "qd-tree" in layout.describe()


class TestQdTreeLayoutRouting:
    def test_hand_built_tree_routes_correctly(self, simple_table):
        root = QdTreeNode(
            cut=lt("x", 50.0),
            true_child=QdTreeNode(partition_id=0),
            false_child=QdTreeNode(partition_id=1),
        )
        layout = QdTreeLayout(root)
        assignment = layout.assign(simple_table)
        x = simple_table["x"]
        assert (assignment[x < 50.0] == 0).all()
        assert (assignment[x >= 50.0] == 1).all()

    def test_metadata_consistent_with_routing(self, simple_table, rng):
        layout = QdTreeBuilder().build(simple_table, make_workload(rng), 8, rng)
        metadata = layout.metadata_for(simple_table)
        assignment = layout.assign(simple_table)
        for partition in metadata.partitions:
            rows = assignment == partition.partition_id
            assert partition.row_count == int(rows.sum())
            assert simple_table["x"][rows].min() >= partition.stats["x"].min
            assert simple_table["x"][rows].max() <= partition.stats["x"].max


class TestSplitEdges:
    """Edge cases of the greedy split loop: degenerate inputs, budget
    boundaries, and merge-like single-leaf collapses."""

    def test_empty_sample_gives_single_leaf(self, rng):
        from repro.storage import ColumnSpec, Schema, Table

        schema = Schema(columns=(ColumnSpec("x", "numeric"),))
        empty = Table(schema, {"x": np.empty(0, dtype=np.float64)})
        layout = QdTreeBuilder().build(empty, make_workload(rng), 8, rng)
        assert layout.num_partitions == 1
        assert layout.root.is_leaf

    def test_single_partition_budget_never_splits(self, simple_table, rng):
        layout = QdTreeBuilder().build(simple_table, make_workload(rng), 1, rng)
        assert layout.num_partitions == 1
        assert layout.assign(simple_table).max() == 0

    def test_constant_data_has_no_beneficial_cut(self, rng):
        from repro.storage import ColumnSpec, Schema, Table

        schema = Schema(columns=(ColumnSpec("x", "numeric"),))
        table = Table(schema, {"x": np.full(200, 7.0)})
        workload = [Query(predicate=between("x", 0.0, 5.0)) for _ in range(10)]
        layout = QdTreeBuilder().build(table, workload, 8, rng)
        # Every cut puts all rows on one side: min_rows forbids the split.
        assert layout.num_partitions == 1

    def test_workload_outside_data_range_still_splits_nothing_usefully(self, simple_table, rng):
        """Queries that never touch sample rows yield zero benefit: no split."""
        workload = [Query(predicate=between("x", 1e6, 2e6)) for _ in range(5)]
        layout = QdTreeBuilder().build(simple_table, workload, 8, rng)
        assert layout.num_partitions == 1

    def test_allowed_columns_restricts_builder_cuts(self, simple_table, rng):
        workload = make_workload(rng)
        layout = QdTreeBuilder(allowed_columns=["color"]).build(
            simple_table, workload, 8, rng
        )
        stack = [layout.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                continue
            assert node.cut.columns() == frozenset({"color"})
            stack.extend((node.true_child, node.false_child))

    def test_partition_ids_are_dense_and_deterministic(self, simple_table, rng):
        layout = QdTreeBuilder().build(simple_table, make_workload(rng), 8, rng)
        leaf_ids = sorted(
            node.partition_id
            for node in _iter_leaves(layout.root)
        )
        assert leaf_ids == list(range(layout.num_partitions))

    def test_exact_budget_stops_splitting(self, simple_table, rng):
        """The loop must stop at exactly num_partitions leaves even when
        more beneficial cuts remain on the heap."""
        layout = QdTreeBuilder().build(simple_table, make_workload(rng), 3, rng)
        assert layout.num_partitions <= 3

    def test_tiny_sample_respects_min_leaf_rows(self, rng):
        from repro.storage import ColumnSpec, Schema, Table

        schema = Schema(columns=(ColumnSpec("x", "numeric"),))
        table = Table(schema, {"x": np.array([1.0, 2.0, 3.0])})
        workload = [Query(predicate=between("x", 0.0, 1.5))]
        layout = QdTreeBuilder(min_leaf_fraction=1.0).build(table, workload, 3, rng)
        counts = np.bincount(layout.assign(table), minlength=layout.num_partitions)
        assert counts[counts > 0].min() >= 1


def _iter_leaves(root):
    stack = [root]
    while stack:
        node = stack.pop()
        if node.is_leaf:
            yield node
        else:
            stack.extend((node.true_child, node.false_child))
