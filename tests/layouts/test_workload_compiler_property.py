"""Property tests: batched workload matrices equal the per-predicate path
and the scalar oracle, bit for bit.

Two generators drive the equivalence:

* hand-built metadata with adversarial statistics — NaN/±inf boundaries,
  empty (zero-row) partitions, partitions missing columns entirely,
  string-typed boundaries, partial distinct sets, float64-lossy huge
  ints — the space a table-backed generator cannot reach;
* real tables with random assignments and builder layouts, matching how
  metadata is produced in the system.

Predicate ASTs mix all node types (including unsupported user-defined
nodes and NaN/inf/string constants); no approximation is tolerated in
either direction because the compiled path replaces the oracle in every
decision loop.
"""

from __future__ import annotations

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layouts import CompiledWorkload, QdTreeBuilder, RangeLayoutBuilder, ZoneMapIndex
from repro.layouts.metadata import (
    ColumnStats,
    LayoutMetadata,
    PartitionMetadata,
    build_layout_metadata,
)
from repro.queries.predicates import (
    AlwaysFalse,
    AlwaysTrue,
    And,
    Between,
    Comparison,
    In,
    Not,
    Or,
    Predicate,
)
from repro.storage import ColumnSpec, Schema, Table

# ----------------------------------------------------------- shared helpers


def scalar_matrices(metadata, predicates):
    num_parts = len(metadata.partitions)
    may = np.array(
        [[p.may_match(part) for part in metadata.partitions] for p in predicates],
        dtype=bool,
    ).reshape(len(predicates), num_parts)
    all_ = np.array(
        [[p.matches_all(part) for part in metadata.partitions] for p in predicates],
        dtype=bool,
    ).reshape(len(predicates), num_parts)
    return may, all_


def assert_equivalent(metadata, predicates):
    index = ZoneMapIndex(metadata)
    workload = CompiledWorkload(predicates)
    got_may = workload.prune_matrix(index)
    got_all = workload.matches_all_matrix(index)
    per_predicate = index.prune_matrix(predicates)
    expected_may, expected_all = scalar_matrices(metadata, predicates)
    np.testing.assert_array_equal(got_may, per_predicate)
    np.testing.assert_array_equal(got_may, expected_may)
    np.testing.assert_array_equal(got_all, expected_all)
    np.testing.assert_array_equal(
        workload.accessed_fractions(index), index.accessed_fractions(predicates)
    )


class ParityPredicate(Predicate):
    """Unsupported node: forces the per-node scalar fallback."""

    __slots__ = ("column",)

    def __init__(self, column: str):
        self.column = column

    def evaluate(self, columns):
        return columns[self.column] % 2 == 0

    def may_match(self, metadata):
        stats = metadata.stats.get(self.column)
        if stats is None or stats.distinct is None:
            return True
        return any(isinstance(v, (int, float)) and v % 2 == 0 for v in stats.distinct)

    def matches_all(self, metadata):
        stats = metadata.stats.get(self.column)
        if stats is None or stats.distinct is None:
            return False
        return all(isinstance(v, (int, float)) and v % 2 == 0 for v in stats.distinct)

    def columns(self):
        return frozenset((self.column,))

    def negate(self):
        return Not(self)

    def cache_key(self):
        return ("parity", self.column)


# --------------------------------------- generator 1: adversarial metadata

_NUMERIC_COLUMNS = ("n1", "n2")
_DISTINCT_COLUMN = "c"
_STRING_COLUMN = "s"

_numeric_value = st.one_of(
    st.integers(min_value=-30, max_value=30),
    st.floats(min_value=-30.0, max_value=30.0, allow_nan=False),
    st.sampled_from([float("inf"), float("-inf"), float("nan"), 2**53 + 1, -(2**53) - 3]),
)
_string_value = st.text(alphabet="abcz", min_size=0, max_size=3)


def _numeric_stats():
    def build(a, b, distinct):
        low, high = (a, b)
        try:
            if not (low <= high):  # NaN or inverted: force a legal pair
                low, high = high, low
            if not (low <= high):
                low = high = a if a == a else 0.0  # both NaN -> collapse
        except TypeError:
            low, high = 0.0, 1.0
        return ColumnStats(min=low, max=high, distinct=distinct)

    return st.builds(
        build,
        _numeric_value,
        _numeric_value,
        st.one_of(
            st.none(),
            st.frozensets(st.integers(min_value=-30, max_value=30), min_size=1, max_size=6),
        ),
    )


def _string_stats():
    return st.builds(
        lambda a, b: ColumnStats(min=min(a, b), max=max(a, b)),
        _string_value,
        _string_value,
    )


@st.composite
def adversarial_metadata(draw):
    num_partitions = draw(st.integers(min_value=0, max_value=6))
    partitions = []
    for pid in range(num_partitions):
        stats = {}
        for name in _NUMERIC_COLUMNS:
            if draw(st.booleans()):
                stats[name] = draw(_numeric_stats())
        if draw(st.booleans()):
            stats[_DISTINCT_COLUMN] = draw(_numeric_stats())
        if draw(st.booleans()):
            stats[_STRING_COLUMN] = draw(_string_stats())
        row_count = draw(st.integers(min_value=0, max_value=50))  # 0: empty partition
        partitions.append(PartitionMetadata(pid, row_count, stats))
    return LayoutMetadata(partitions=tuple(partitions))


def _atoms(columns, constants):
    comparisons = st.builds(
        Comparison,
        st.sampled_from(columns),
        st.sampled_from(["<", "<=", ">", ">=", "==", "!="]),
        constants,
    )
    betweens = st.builds(
        lambda col, a, b: Between(col, min(a, b), max(a, b)),
        st.sampled_from(columns),
        constants.filter(lambda v: v == v),  # NaN bounds cannot be ordered
        constants.filter(lambda v: v == v),
    )
    ins = st.builds(
        In,
        st.sampled_from(columns),
        st.lists(constants, min_size=1, max_size=4),
    )
    return st.one_of(comparisons, betweens, ins)


def predicate_trees(columns, constants, with_unsupported=True):
    atoms = _atoms(columns, constants)
    if with_unsupported:
        atoms = st.one_of(
            atoms,
            st.builds(ParityPredicate, st.sampled_from(columns)),
            st.just(AlwaysTrue()),
            st.just(AlwaysFalse()),
        )
    return st.recursive(
        atoms,
        lambda children: st.one_of(
            st.builds(lambda kids: And(tuple(kids)), st.lists(children, min_size=1, max_size=3)),
            st.builds(lambda kids: Or(tuple(kids)), st.lists(children, min_size=1, max_size=3)),
            st.builds(Not, children),
        ),
        max_leaves=6,
    )


_numeric_constant = st.one_of(
    st.integers(min_value=-35, max_value=35),
    st.floats(min_value=-35.0, max_value=35.0, allow_nan=False),
    st.sampled_from([float("inf"), float("-inf"), float("nan"), 2**53 + 1]),
)

_mixed_predicates = st.one_of(
    predicate_trees(list(_NUMERIC_COLUMNS) + [_DISTINCT_COLUMN, "missing"], _numeric_constant),
    predicate_trees([_STRING_COLUMN], _string_value, with_unsupported=False),
)


@given(
    metadata=adversarial_metadata(),
    predicates=st.lists(_mixed_predicates, min_size=0, max_size=8),
)
@settings(max_examples=250, deadline=None)
def test_adversarial_metadata_matches_oracle(metadata, predicates):
    assert_equivalent(metadata, predicates)


# ------------------------------------------ generator 2: real random tables

_SCHEMA = Schema(
    columns=(
        ColumnSpec("a", "numeric"),
        ColumnSpec("b", "numeric"),
        ColumnSpec("c", "categorical", tuple(f"v{i}" for i in range(8))),
    )
)


def make_table(seed: int, n: int) -> Table:
    rng = np.random.default_rng(seed)
    return Table(
        _SCHEMA,
        {
            "a": rng.integers(-20, 21, size=n).astype(np.int64),
            "b": rng.uniform(-5.0, 45.0, size=n),
            "c": rng.integers(0, 8, size=n).astype(np.int32),
        },
    )


_table_predicates = st.lists(
    predicate_trees(
        ["a", "b", "c"],
        st.one_of(
            st.integers(min_value=-25, max_value=25),
            st.sampled_from([float("inf"), float("nan"), 2**53 + 1]),
        ),
    ),
    min_size=1,
    max_size=8,
)


@given(
    data_seed=st.integers(0, 10_000),
    assign_seed=st.integers(0, 10_000),
    n=st.integers(1, 300),
    num_partitions=st.integers(1, 12),
    predicates=_table_predicates,
)
@settings(max_examples=150, deadline=None)
def test_random_assignment_matches_oracle(data_seed, assign_seed, n, num_partitions, predicates):
    table = make_table(data_seed, n)
    assignment = np.random.default_rng(assign_seed).integers(0, num_partitions, size=n)
    metadata = build_layout_metadata(table, assignment)
    assert_equivalent(metadata, predicates)


@given(
    data_seed=st.integers(0, 10_000),
    kind=st.sampled_from(["range", "qdtree"]),
    predicates=_table_predicates,
)
@settings(max_examples=40, deadline=None)
def test_builder_layouts_match_oracle(data_seed, kind, predicates):
    from repro.queries import Query

    table = make_table(data_seed, 250)
    rng = np.random.default_rng(data_seed)
    workload = [
        Query(predicate=p)
        for p in predicates
        if not _contains_nan_constant(p)  # qd-tree cuts evaluate rows; NaN ok but pointless
    ] or [Query(predicate=AlwaysTrue())]
    if kind == "range":
        layout = RangeLayoutBuilder("a").build(table, workload, 6, rng)
    else:
        layout = QdTreeBuilder().build(table, workload, 6, rng)
    metadata = layout.metadata_for(table)
    assert_equivalent(metadata, predicates)


def _contains_nan_constant(predicate) -> bool:
    if isinstance(predicate, Comparison):
        value = predicate.value
        return isinstance(value, float) and math.isnan(value)
    if isinstance(predicate, (And, Or)):
        return any(_contains_nan_constant(c) for c in predicate.children)
    if isinstance(predicate, Not):
        return _contains_nan_constant(predicate.child)
    return False
