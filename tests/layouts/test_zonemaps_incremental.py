"""Incremental zone-map maintenance: deltas and ``apply_reorg``.

The contract under test: however a reorganization sequence unfolds, an
index maintained through ``apply_reorg`` must be *behaviorally
indistinguishable* from ``compile_zone_maps`` on the final metadata —
same masks, same fractions, same compiled-workload matrices — while a
delta must classify exactly the partitions whose content changed.

A hypothesis state machine drives random reorganization sequences
(partition swaps, splits, merges, full shuffles) and checks the
equivalence after every step, with predicates evaluated *before* the
step so carried columns are exercised, not lazily recompiled.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule
from hypothesis import strategies as st

from repro.layouts import (
    CompiledWorkload,
    ZoneMapIndex,
    compile_zone_maps,
    compute_reorg_delta,
    compute_reorg_delta_from_assignments,
)
from repro.layouts.metadata import (
    ColumnStats,
    LayoutMetadata,
    PartitionMetadata,
    build_layout_metadata,
)
from repro.queries import between, eq, ge, isin, lt, ne
from repro.queries.predicates import And, Not, Or
from repro.storage import ColumnSpec, Schema, Table

_SCHEMA = Schema(
    columns=(
        ColumnSpec("a", "numeric"),
        ColumnSpec("b", "numeric"),
        ColumnSpec("c", "categorical", tuple(f"v{i}" for i in range(8))),
    )
)

#: evaluated every step: comparisons, ranges, IN, residue Or/Not — enough
#: to compile (and therefore carry) every column in both mask directions
_PROBES = [
    between("a", -10, 10),
    lt("b", 20.0),
    ge("a", 0),
    eq("c", 3),
    ne("c", 1),
    isin("c", [0, 5, 7]),
    And((between("b", 0.0, 30.0), eq("c", 2))),
    Or((lt("a", -15), ge("a", 15))),
    Not(between("a", -5, 5)),
]


def make_table(seed: int, n: int = 400) -> Table:
    rng = np.random.default_rng(seed)
    return Table(
        _SCHEMA,
        {
            "a": rng.integers(-20, 21, size=n).astype(np.int64),
            "b": rng.uniform(-5.0, 45.0, size=n),
            "c": rng.integers(0, 8, size=n).astype(np.int32),
        },
    )


def assert_index_equals_fresh(index: ZoneMapIndex, metadata: LayoutMetadata):
    fresh = compile_zone_maps(metadata)
    for probe in _PROBES:
        np.testing.assert_array_equal(index._mask(probe, False), fresh._mask(probe, False))
        np.testing.assert_array_equal(index._mask(probe, True), fresh._mask(probe, True))
        assert index.accessed_fraction(probe) == fresh.accessed_fraction(probe)
    np.testing.assert_array_equal(index.row_counts, fresh.row_counts)
    assert index.total_rows == fresh.total_rows


class ReorgMachine(RuleBasedStateMachine):
    """Random reorg sequences; incremental index checked after every step."""

    @initialize(seed=st.integers(0, 1_000))
    def setup(self, seed):
        self.rng = np.random.default_rng(seed)
        self.table = make_table(seed)
        self.assignment = self.rng.integers(0, 8, size=self.table.num_rows)
        self.metadata = build_layout_metadata(self.table, self.assignment)
        self.index = compile_zone_maps(self.metadata)
        self.workload = CompiledWorkload(_PROBES)
        self._warm()

    def _warm(self):
        """Compile columns *before* the next reorg so carrying is exercised."""
        self.prior = self.workload.prune_matrix(self.index)
        for probe in _PROBES:
            self.index.masks(probe)

    def _apply(self, new_assignment):
        new_metadata = build_layout_metadata(self.table, new_assignment)
        delta = compute_reorg_delta_from_assignments(
            self.metadata, new_metadata, self.assignment, new_assignment
        )
        # The assignment-derived delta must agree with the metadata diff.
        reference = compute_reorg_delta(self.metadata, new_metadata)
        assert set(delta.changed) >= set(reference.changed)
        carried = dict(zip(delta.carried_new.tolist(), delta.carried_old.tolist(), strict=True))
        reference_carried = dict(
            zip(reference.carried_new.tolist(), reference.carried_old.tolist(), strict=True)
        )
        for new_pos, old_pos in carried.items():
            assert reference_carried.get(new_pos) == old_pos
        new_index = self.index.apply_reorg(delta)
        # Incremental revalidation of the compiled workload matches too.
        revalidated = self.workload.revalidate(new_index, delta, self.prior)
        np.testing.assert_array_equal(
            revalidated, self.workload.prune_matrix(compile_zone_maps(new_metadata))
        )
        self.assignment = new_assignment
        self.metadata = new_metadata
        self.index = new_index
        self._warm()

    @rule(ids=st.lists(st.integers(0, 7), min_size=1, max_size=3, unique=True), seed=st.integers(0, 10_000))
    def swap_rows_between_partitions(self, ids, seed):
        new_assignment = self.assignment.copy()
        member = np.isin(self.assignment, ids)
        if member.any():
            new_assignment[member] = np.random.default_rng(seed).choice(
                ids, size=int(member.sum())
            )
        self._apply(new_assignment)

    @rule(source=st.integers(0, 7), sink=st.integers(8, 11))
    def split_partition(self, source, sink):
        new_assignment = self.assignment.copy()
        member = np.flatnonzero(self.assignment == source)
        new_assignment[member[::2]] = sink
        self._apply(new_assignment)

    @rule(victim=st.integers(0, 11), into=st.integers(0, 7))
    def merge_partition(self, victim, into):
        if victim == into:
            return
        new_assignment = self.assignment.copy()
        new_assignment[self.assignment == victim] = into
        self._apply(new_assignment)

    @rule(seed=st.integers(0, 10_000), parts=st.integers(2, 12))
    def full_shuffle(self, seed, parts):
        new_assignment = np.random.default_rng(seed).integers(
            0, parts, size=self.table.num_rows
        )
        self._apply(new_assignment)

    @invariant()
    def incremental_matches_fresh(self):
        if hasattr(self, "index"):
            assert_index_equals_fresh(self.index, self.metadata)


TestReorgMachine = ReorgMachine.TestCase
TestReorgMachine.settings = settings(
    max_examples=25, stateful_step_count=12, deadline=None
)


class TestDeltaUnits:
    def test_identity_reorg_carries_everything(self, simple_table):
        assignment = np.arange(simple_table.num_rows) % 5
        old = build_layout_metadata(simple_table, assignment)
        new = build_layout_metadata(simple_table, assignment)
        delta = compute_reorg_delta(old, new)
        assert delta.changed == ()
        assert delta.change_fraction == 0.0
        assert len(delta.carried_new) == old.num_partitions

    def test_full_rewrite_changes_everything(self, simple_table, rng):
        old = build_layout_metadata(simple_table, np.arange(simple_table.num_rows) % 5)
        new = build_layout_metadata(
            simple_table, rng.integers(0, 5, size=simple_table.num_rows)
        )
        delta = compute_reorg_delta(old, new)
        assert len(delta.changed) == new.num_partitions
        assert delta.change_fraction == 1.0

    def test_new_partition_id_is_changed(self, simple_table):
        assignment = np.arange(simple_table.num_rows) % 4
        old = build_layout_metadata(simple_table, assignment)
        grown = assignment.copy()
        grown[:50] = 9  # new partition id
        new = build_layout_metadata(simple_table, grown)
        delta = compute_reorg_delta(old, new)
        changed_ids = {new.partitions[i].partition_id for i in delta.changed}
        assert 9 in changed_ids

    def test_apply_reorg_requires_matching_metadata(self, simple_table):
        assignment = np.arange(simple_table.num_rows) % 4
        old = build_layout_metadata(simple_table, assignment)
        other = build_layout_metadata(simple_table, assignment)
        delta = compute_reorg_delta(old, old)
        index = ZoneMapIndex(other)  # built from a different object
        with pytest.raises(ValueError):
            index.apply_reorg(delta)

    def test_assignment_delta_rejects_length_mismatch(self, simple_table):
        assignment = np.arange(simple_table.num_rows) % 4
        metadata = build_layout_metadata(simple_table, assignment)
        with pytest.raises(ValueError):
            compute_reorg_delta_from_assignments(
                metadata, metadata, assignment, assignment[:-1]
            )

    def test_empty_metadata_roundtrip(self):
        empty = LayoutMetadata(partitions=())
        delta = compute_reorg_delta(empty, empty)
        index = ZoneMapIndex(empty).apply_reorg(delta)
        assert index.num_partitions == 0

    def test_reorg_to_empty_and_back(self, simple_table):
        assignment = np.arange(simple_table.num_rows) % 4
        old = build_layout_metadata(simple_table, assignment)
        index = ZoneMapIndex(old)
        index.masks(between("x", 0.0, 50.0))  # compile a column
        empty = LayoutMetadata(partitions=())
        delta = compute_reorg_delta(old, empty)
        shrunk = index.apply_reorg(delta)
        assert shrunk.num_partitions == 0
        assert shrunk.accessed_fraction(between("x", 0.0, 50.0)) == 0.0
        back = compute_reorg_delta(empty, old)
        grown = shrunk.apply_reorg(back)
        assert_index_equals_fresh_x(grown, old)


def assert_index_equals_fresh_x(index, metadata):
    fresh = compile_zone_maps(metadata)
    probe = between("x", 0.0, 50.0)
    np.testing.assert_array_equal(index._mask(probe, False), fresh._mask(probe, False))
    np.testing.assert_array_equal(index._mask(probe, True), fresh._mask(probe, True))


class TestCarryEdges:
    def test_column_appearing_only_in_changed_partitions(self):
        """Base zones None -> carried stats absent, changed supply them."""
        old = LayoutMetadata(
            partitions=(
                PartitionMetadata(0, 10, {"a": ColumnStats(0.0, 5.0)}),
                PartitionMetadata(1, 10, {"a": ColumnStats(6.0, 9.0)}),
            )
        )
        index = ZoneMapIndex(old)
        index.masks(between("b", 0.0, 1.0))  # compiles "b" to None (no stats)
        new = LayoutMetadata(
            partitions=(
                old.partitions[0],
                PartitionMetadata(1, 10, {"a": ColumnStats(6.0, 9.0), "b": ColumnStats(1.0, 2.0)}),
            )
        )
        delta = compute_reorg_delta(old, new)
        assert delta.changed == (1,)
        carried = index.apply_reorg(delta)
        fresh = ZoneMapIndex(new)
        for probe in (between("b", 0.0, 0.5), between("b", 1.5, 3.0), eq("b", 1.5)):
            np.testing.assert_array_equal(
                carried._mask(probe, False), fresh._mask(probe, False)
            )
            np.testing.assert_array_equal(
                carried._mask(probe, True), fresh._mask(probe, True)
            )

    def test_column_vanishing_from_all_partitions(self):
        old = LayoutMetadata(
            partitions=(
                PartitionMetadata(0, 10, {"a": ColumnStats(0.0, 5.0)}),
            )
        )
        index = ZoneMapIndex(old)
        index.masks(between("a", 0.0, 1.0))
        new = LayoutMetadata(partitions=(PartitionMetadata(0, 10, {}),))
        delta = compute_reorg_delta(old, new)
        carried = index.apply_reorg(delta)
        fresh = ZoneMapIndex(new)
        probe = between("a", 0.0, 1.0)
        np.testing.assert_array_equal(carried._mask(probe, False), fresh._mask(probe, False))
        np.testing.assert_array_equal(carried._mask(probe, True), fresh._mask(probe, True))

    def test_new_distinct_values_grow_union_append_only(self):
        old = LayoutMetadata(
            partitions=(
                PartitionMetadata(0, 10, {"c": ColumnStats(0, 5, frozenset({0, 2, 5}))}),
                PartitionMetadata(1, 10, {"c": ColumnStats(1, 7, frozenset({1, 3, 7}))}),
            )
        )
        index = ZoneMapIndex(old)
        index.masks(isin("c", [0, 1]))  # compile with the old union
        new = LayoutMetadata(
            partitions=(
                old.partitions[0],
                PartitionMetadata(1, 12, {"c": ColumnStats(1, 11, frozenset({1, 9, 11}))}),
            )
        )
        delta = compute_reorg_delta(old, new)
        carried = index.apply_reorg(delta)
        fresh = ZoneMapIndex(new)
        for probe in (isin("c", [9, 11]), isin("c", [0, 2]), eq("c", 11), ne("c", 9),
                      Not(isin("c", [2, 5, 9, 11]))):
            np.testing.assert_array_equal(
                carried._mask(probe, False), fresh._mask(probe, False)
            )
            np.testing.assert_array_equal(
                carried._mask(probe, True), fresh._mask(probe, True)
            )

    def test_non_numeric_new_boundaries_drop_to_lazy(self):
        """A column whose type changes wholesale cannot be carried: the
        update drops it back to lazy compilation (scalar fallback)."""
        old = LayoutMetadata(
            partitions=(
                PartitionMetadata(0, 10, {"a": ColumnStats(0.0, 5.0)}),
                PartitionMetadata(1, 10, {"a": ColumnStats(6.0, 9.0)}),
            )
        )
        index = ZoneMapIndex(old)
        index.masks(between("a", 0.0, 1.0))
        new = LayoutMetadata(
            partitions=(
                PartitionMetadata(0, 10, {"a": ColumnStats("apple", "mango")}),
                PartitionMetadata(1, 10, {"a": ColumnStats("melon", "zebra")}),
            )
        )
        delta = compute_reorg_delta(old, new)
        assert len(delta.changed) == 2
        carried = index.apply_reorg(delta)
        assert "a" not in carried._columns  # dropped to lazy
        fresh = ZoneMapIndex(new)
        from repro.queries.predicates import Comparison

        probe = Comparison("a", "<", "m")
        np.testing.assert_array_equal(carried._mask(probe, False), fresh._mask(probe, False))
        np.testing.assert_array_equal(carried._mask(probe, True), fresh._mask(probe, True))

    def test_uncompiled_columns_stay_lazy(self, simple_table):
        assignment = np.arange(simple_table.num_rows) % 4
        old = build_layout_metadata(simple_table, assignment)
        index = ZoneMapIndex(old)
        index.masks(between("x", 0.0, 50.0))  # only "x" compiled
        moved = assignment.copy()
        moved[:100] = (moved[:100] + 1) % 4
        new = build_layout_metadata(simple_table, moved)
        delta = compute_reorg_delta(old, new)
        carried = index.apply_reorg(delta)
        assert "x" in carried._columns
        assert "y" not in carried._columns  # still lazy
        fresh = ZoneMapIndex(new)
        for probe in (between("y", 0, 10), eq("color", 1)):
            np.testing.assert_array_equal(
                carried._mask(probe, False), fresh._mask(probe, False)
            )
