"""Tests for transition choosers (uniform and γ-weighted predictor)."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.core import GammaWeightedChooser, UniformChooser


class TestUniformChooser:
    def test_requires_candidates(self):
        with pytest.raises(ValueError):
            UniformChooser().choose([], {}, np.random.default_rng(0))

    def test_single_candidate(self):
        chooser = UniformChooser()
        assert chooser.choose(["a"], {}, np.random.default_rng(0)) == "a"

    def test_approximately_uniform(self):
        chooser = UniformChooser()
        rng = np.random.default_rng(0)
        counts = Counter(
            chooser.choose(["a", "b", "c"], {}, rng) for _ in range(3000)
        )
        for state in "abc":
            assert 800 < counts[state] < 1200

    def test_ignores_weights(self):
        chooser = UniformChooser()
        rng = np.random.default_rng(0)
        counts = Counter(
            chooser.choose(["a", "b"], {"a": 100.0, "b": 0.001}, rng)
            for _ in range(2000)
        )
        assert 800 < counts["b"] < 1200


class TestGammaWeightedChooser:
    def test_negative_gamma_rejected(self):
        with pytest.raises(ValueError):
            GammaWeightedChooser(-1.0)

    def test_requires_candidates(self):
        with pytest.raises(ValueError):
            GammaWeightedChooser(1.0).choose([], {}, np.random.default_rng(0))

    def test_gamma_zero_is_uniform(self):
        chooser = GammaWeightedChooser(0.0)
        rng = np.random.default_rng(0)
        counts = Counter(
            chooser.choose(["a", "b"], {"a": 1.0, "b": 0.0}, rng) for _ in range(2000)
        )
        assert 800 < counts["b"] < 1200

    def test_bias_toward_heavier_weight(self):
        chooser = GammaWeightedChooser(1.0)
        rng = np.random.default_rng(0)
        weights = {"good": 0.9, "bad": 0.1}
        counts = Counter(
            chooser.choose(["good", "bad"], weights, rng) for _ in range(3000)
        )
        assert counts["good"] > 2 * counts["bad"]

    def test_higher_gamma_sharpens_bias(self):
        rng_a = np.random.default_rng(0)
        rng_b = np.random.default_rng(0)
        weights = {"good": 0.9, "bad": 0.3}
        candidates = ["good", "bad"]
        soft = Counter(
            GammaWeightedChooser(1.0).choose(candidates, weights, rng_a)
            for _ in range(3000)
        )
        sharp = Counter(
            GammaWeightedChooser(3.0).choose(candidates, weights, rng_b)
            for _ in range(3000)
        )
        assert sharp["good"] > soft["good"]

    def test_unknown_candidates_get_median_weight(self):
        chooser = GammaWeightedChooser(1.0)
        rng = np.random.default_rng(0)
        weights = {"a": 0.5, "b": 0.5}
        # "new" has no weight; it must still be picked sometimes (median=0.5).
        counts = Counter(
            chooser.choose(["a", "b", "new"], weights, rng) for _ in range(3000)
        )
        assert counts["new"] > 500

    def test_all_unknown_candidates_fallback(self):
        chooser = GammaWeightedChooser(2.0)
        rng = np.random.default_rng(0)
        counts = Counter(chooser.choose(["x", "y"], {}, rng) for _ in range(2000))
        assert 700 < counts["x"] < 1300

    def test_all_zero_weights_degrade_to_uniform(self):
        """The weight floor prevents 0/0 normalization when no state skipped
        anything last phase — the distribution degrades to uniform."""
        chooser = GammaWeightedChooser(1.0)
        rng = np.random.default_rng(0)
        weights = {"a": 0.0, "b": 0.0}
        counts = Counter(chooser.choose(["a", "b"], weights, rng) for _ in range(2000))
        assert 800 < counts["a"] < 1200
