"""Tests for the REORGANIZER: delay semantics and state forwarding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Reorganizer, ReorganizerConfig


def make(delay=0, alpha=1.0, seed=0, **kwargs):
    config = ReorganizerConfig(alpha=alpha, delay=delay, **kwargs)
    return Reorganizer("init", config, np.random.default_rng(seed))


def drive_until_switch(reorganizer, costs, max_steps=100):
    """Feed constant costs until the algorithm decides to switch."""
    for _ in range(max_steps):
        step = reorganizer.observe(costs)
        if step.reorg_started is not None:
            return step
    raise AssertionError("no switch occurred")


class TestConfig:
    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            ReorganizerConfig(delay=-1)


class TestZeroDelay:
    def test_effective_follows_logical_next_query(self):
        reorganizer = make(delay=0)
        reorganizer.add_layout("better")
        # Force a phase so "better" activates, then fill init's counter.
        step = drive_until_switch(reorganizer, {"init": 1.0, "better": 0.0})
        # The triggering query itself was serviced on the old layout.
        assert step.effective_layout == "init"
        assert step.reorg_started == "better"
        follow_up = reorganizer.observe({"init": 1.0, "better": 0.0})
        assert follow_up.effective_layout == "better"


class TestDelayedSwap:
    def test_delay_queries_on_old_layout(self):
        delay = 4
        reorganizer = make(delay=delay)
        reorganizer.add_layout("better")
        drive_until_switch(reorganizer, {"init": 1.0, "better": 0.0})
        served_on = []
        for _ in range(delay + 2):
            step = reorganizer.observe({"init": 0.0, "better": 0.0})
            served_on.append(step.effective_layout)
        assert served_on[:delay] == ["init"] * delay
        assert served_on[delay] == "better"

    def test_completion_event_reported(self):
        reorganizer = make(delay=2)
        reorganizer.add_layout("better")
        drive_until_switch(reorganizer, {"init": 1.0, "better": 0.0})
        completions = []
        for _ in range(4):
            step = reorganizer.observe({"init": 0.0, "better": 0.0})
            completions.append(step.reorg_completed)
        assert completions.count("better") == 1

    def test_movement_cost_charged_at_decision(self):
        reorganizer = make(delay=5, alpha=1.0)
        reorganizer.add_layout("better")
        step = drive_until_switch(reorganizer, {"init": 1.0, "better": 0.0})
        assert step.movement_cost == 1.0
        # Later queries carry no extra movement cost while the swap is pending.
        follow_up = reorganizer.observe({"init": 0.0, "better": 0.0})
        assert follow_up.movement_cost == 0.0

    def test_new_decision_supersedes_pending(self):
        reorganizer = make(delay=3, alpha=1.0)
        reorganizer.add_layout("b")
        drive_until_switch(reorganizer, {"init": 1.0, "b": 0.0})
        assert reorganizer.pending_target == "b"
        reorganizer.add_layout("c")
        # Make the logical state (b) fill while c stays cheap; after a phase
        # where everything fills, c eventually becomes the target.
        for _ in range(50):
            step = reorganizer.observe({"init": 1.0, "b": 1.0, "c": 0.0})
            if step.reorg_started == "c":
                break
        else:
            raise AssertionError("never switched to c")
        assert reorganizer.pending_target == "c"


class TestRemoveLayout:
    def test_remove_non_current_is_free(self):
        reorganizer = make()
        reorganizer.add_layout("other")
        reorganizer.observe({"init": 0.2, "other": 0.2})
        assert reorganizer.remove_layout("other") == 0.0

    def test_remove_current_costs_alpha(self):
        reorganizer = make(alpha=7.0)
        reorganizer.add_layout("other")
        # Activate "other" by finishing a phase.
        reorganizer.observe({"init": 1.0, "other": 1.0})
        cost = reorganizer.remove_layout("init")
        assert cost == 7.0
        assert reorganizer.logical == "other"
        assert reorganizer.forced_switches == 1

    def test_remove_current_with_zero_delay_swaps_effective(self):
        reorganizer = make(alpha=2.0, delay=0)
        reorganizer.add_layout("other")
        reorganizer.observe({"init": 1.0, "other": 1.0})
        reorganizer.remove_layout("init")
        assert reorganizer.effective == "other"

    def test_layout_ids_view(self):
        reorganizer = make()
        reorganizer.add_layout("x")
        assert set(reorganizer.layout_ids()) == {"init", "x"}
