"""Stateful property testing of D-UMTS under arbitrary operation orders.

Hypothesis drives random interleavings of service queries, state additions
and state removals — the full D-UMTS interface — and checks the structural
invariants of Algorithm 4 after every step:

* the current state is always a member of the state space;
* the current state's counter is strictly below α (it would have triggered
  a switch otherwise);
* active states are exactly those with counters below α, and active ⊆ space;
* ``smax`` never decreases and always dominates the live state count;
* accumulated movement cost equals α × (observed switches + forced
  switches from removing the current state).
"""

from __future__ import annotations

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.core import DynamicUMTS

ALPHA = 3.0


class DUMTSMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.algorithm = DynamicUMTS(
            ["s0", "s1"],
            ALPHA,
            np.random.default_rng(0),
            initial_state="s0",
            stay_on_reset=True,
        )
        self._next_state_id = 2
        self.movement_paid = 0.0
        self.switch_count = 0

    # ------------------------------------------------------------------- rules
    @rule(seed=st.integers(0, 2**16))
    def service_query(self, seed):
        rng = np.random.default_rng(seed)
        costs = {s: float(rng.uniform(0, 1)) for s in self.algorithm.state_names}
        decision = self.algorithm.observe(costs)
        self.movement_paid += decision.movement_cost
        if decision.switched:
            self.switch_count += 1

    @rule()
    def add_state(self):
        name = f"s{self._next_state_id}"
        self._next_state_id += 1
        self.algorithm.add_state(name)

    @precondition(lambda self: self.algorithm.num_states > 1)
    @rule(index=st.integers(0, 10_000))
    def remove_some_state(self, index):
        names = self.algorithm.state_names
        victim = names[index % len(names)]
        forced = self.algorithm.remove_state(victim)
        if forced is not None:
            self.movement_paid += ALPHA
            self.switch_count += 1

    # -------------------------------------------------------------- invariants
    @invariant()
    def current_state_exists(self):
        assert self.algorithm.current in self.algorithm.states

    @invariant()
    def current_counter_below_alpha(self):
        assert self.algorithm.counters[self.algorithm.current] < ALPHA

    @invariant()
    def active_set_consistent(self):
        for state in self.algorithm.active:
            assert state in self.algorithm.states
            assert self.algorithm.counters[state] < ALPHA
        # Non-active live states either have full counters or are deferred
        # additions that join at the next phase reset (no counter yet).
        for state in self.algorithm.states:
            if state not in self.algorithm.active:
                counter = self.algorithm.counters.get(state)
                assert counter is None or counter >= ALPHA

    @invariant()
    def counters_subset_of_states(self):
        """Removal must not resurrect counter entries for dead states."""
        assert set(self.algorithm.counters) <= set(self.algorithm.states)
        assert set(self.algorithm.last_phase_weights) <= set(self.algorithm.states)

    @invariant()
    def active_never_empty(self):
        assert self.algorithm.active

    @invariant()
    def smax_dominates(self):
        assert self.algorithm.smax >= self.algorithm.num_states

    @invariant()
    def movement_cost_accounting(self):
        assert self.movement_paid == self.switch_count * ALPHA


DUMTSMachine.TestCase.settings = settings(
    max_examples=60, stateful_step_count=60, deadline=None
)
TestDUMTSStateMachine = DUMTSMachine.TestCase
