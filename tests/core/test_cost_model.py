"""Tests for the cost model and the memoizing cost evaluator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CostEvaluator, CostModel
from repro.layouts import RangeLayoutBuilder, RoundRobinLayout
from repro.queries import Query, between


class TestCostModel:
    def test_alpha_must_exceed_one(self):
        with pytest.raises(ValueError):
            CostModel(alpha=1.0)
        with pytest.raises(ValueError):
            CostModel(alpha=0.5)

    def test_movement_cost(self):
        model = CostModel(alpha=80.0)
        assert model.movement_cost("a", "a") == 0.0
        assert model.movement_cost("a", "b") == 80.0
        assert model.movement_cost(None, "b") == 80.0


class TestCostEvaluator:
    def test_cost_in_unit_interval(self, simple_table, rng):
        evaluator = CostEvaluator(simple_table)
        layout = RoundRobinLayout(4)
        query = Query(predicate=between("x", 10.0, 20.0))
        cost = evaluator.query_cost(layout, query)
        assert 0.0 <= cost <= 1.0

    def test_sorted_layout_cheaper_than_striped(self, simple_table, rng):
        evaluator = CostEvaluator(simple_table)
        striped = RoundRobinLayout(8)
        ranged = RangeLayoutBuilder("x").build(simple_table, [], 8, rng)
        query = Query(predicate=between("x", 10.0, 20.0))
        assert evaluator.query_cost(ranged, query) < evaluator.query_cost(striped, query)

    def test_metadata_cached_per_layout(self, simple_table):
        evaluator = CostEvaluator(simple_table)
        layout = RoundRobinLayout(4)
        first = evaluator.metadata(layout)
        second = evaluator.metadata(layout)
        assert first is second
        assert evaluator.cache_sizes()[0] == 1

    def test_query_costs_cached_by_predicate_identity(self, simple_table):
        evaluator = CostEvaluator(simple_table)
        layout = RoundRobinLayout(4)
        query_a = Query(predicate=between("x", 10.0, 20.0))
        query_b = Query(predicate=between("x", 10.0, 20.0))  # same predicate
        evaluator.query_cost(layout, query_a)
        evaluator.query_cost(layout, query_b)
        assert evaluator.cache_sizes()[1] == 1

    def test_cost_vector_matches_scalar_costs(self, simple_table):
        evaluator = CostEvaluator(simple_table)
        layout = RoundRobinLayout(4)
        queries = [Query(predicate=between("x", float(i), float(i + 10))) for i in range(5)]
        vector = evaluator.cost_vector(layout, queries)
        assert len(vector) == 5
        for query, value in zip(queries, vector):
            assert value == evaluator.query_cost(layout, query)

    def test_average_cost_empty_sample(self, simple_table):
        evaluator = CostEvaluator(simple_table)
        assert evaluator.average_cost(RoundRobinLayout(4), []) == 0.0

    def test_forget_evicts_layout(self, simple_table):
        evaluator = CostEvaluator(simple_table)
        layout = RoundRobinLayout(4)
        evaluator.query_cost(layout, Query(predicate=between("x", 0.0, 1.0)))
        assert evaluator.cache_sizes() == (1, 1)
        evaluator.forget(layout.layout_id)
        assert evaluator.cache_sizes() == (0, 0)

    def test_forget_keeps_other_layouts(self, simple_table):
        evaluator = CostEvaluator(simple_table)
        keep = RoundRobinLayout(4)
        drop = RoundRobinLayout(2)
        query = Query(predicate=between("x", 0.0, 1.0))
        evaluator.query_cost(keep, query)
        evaluator.query_cost(drop, query)
        evaluator.forget(drop.layout_id)
        assert evaluator.cache_sizes() == (1, 1)
