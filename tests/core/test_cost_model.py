"""Tests for the cost model and the memoizing cost evaluator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CostEvaluator, CostModel
from repro.layouts import RangeLayoutBuilder, RoundRobinLayout
from repro.queries import Query, between


class TestCostModel:
    def test_alpha_must_exceed_one(self):
        with pytest.raises(ValueError):
            CostModel(alpha=1.0)
        with pytest.raises(ValueError):
            CostModel(alpha=0.5)

    def test_movement_cost(self):
        model = CostModel(alpha=80.0)
        assert model.movement_cost("a", "a") == 0.0
        assert model.movement_cost("a", "b") == 80.0
        assert model.movement_cost(None, "b") == 80.0


class TestCostEvaluator:
    def test_cost_in_unit_interval(self, simple_table, rng):
        evaluator = CostEvaluator(simple_table)
        layout = RoundRobinLayout(4)
        query = Query(predicate=between("x", 10.0, 20.0))
        cost = evaluator.query_cost(layout, query)
        assert 0.0 <= cost <= 1.0

    def test_sorted_layout_cheaper_than_striped(self, simple_table, rng):
        evaluator = CostEvaluator(simple_table)
        striped = RoundRobinLayout(8)
        ranged = RangeLayoutBuilder("x").build(simple_table, [], 8, rng)
        query = Query(predicate=between("x", 10.0, 20.0))
        assert evaluator.query_cost(ranged, query) < evaluator.query_cost(striped, query)

    def test_metadata_cached_per_layout(self, simple_table):
        evaluator = CostEvaluator(simple_table)
        layout = RoundRobinLayout(4)
        first = evaluator.metadata(layout)
        second = evaluator.metadata(layout)
        assert first is second
        assert evaluator.cache_sizes()[0] == 1

    def test_query_costs_cached_by_predicate_identity(self, simple_table):
        evaluator = CostEvaluator(simple_table)
        layout = RoundRobinLayout(4)
        query_a = Query(predicate=between("x", 10.0, 20.0))
        query_b = Query(predicate=between("x", 10.0, 20.0))  # same predicate
        evaluator.query_cost(layout, query_a)
        evaluator.query_cost(layout, query_b)
        assert evaluator.cache_sizes()[1] == 1

    def test_cost_vector_matches_scalar_costs(self, simple_table):
        evaluator = CostEvaluator(simple_table)
        layout = RoundRobinLayout(4)
        queries = [Query(predicate=between("x", float(i), float(i + 10))) for i in range(5)]
        vector = evaluator.cost_vector(layout, queries)
        assert len(vector) == 5
        for query, value in zip(queries, vector, strict=True):
            assert value == evaluator.query_cost(layout, query)

    def test_average_cost_empty_sample(self, simple_table):
        evaluator = CostEvaluator(simple_table)
        assert evaluator.average_cost(RoundRobinLayout(4), []) == 0.0

    def test_forget_evicts_layout(self, simple_table):
        evaluator = CostEvaluator(simple_table)
        layout = RoundRobinLayout(4)
        evaluator.query_cost(layout, Query(predicate=between("x", 0.0, 1.0)))
        assert evaluator.cache_sizes() == (1, 1)
        evaluator.forget(layout.layout_id)
        assert evaluator.cache_sizes() == (0, 0)

    def test_forget_keeps_other_layouts(self, simple_table):
        evaluator = CostEvaluator(simple_table)
        keep = RoundRobinLayout(4)
        drop = RoundRobinLayout(2)
        query = Query(predicate=between("x", 0.0, 1.0))
        evaluator.query_cost(keep, query)
        evaluator.query_cost(drop, query)
        evaluator.forget(drop.layout_id)
        assert evaluator.cache_sizes() == (1, 1)

    def test_forget_is_single_dict_pop(self, simple_table):
        """Regression: forget used to scan the whole query-cost cache."""
        evaluator = CostEvaluator(simple_table)
        layout = RoundRobinLayout(4)
        queries = [Query(predicate=between("x", float(i), float(i + 1))) for i in range(20)]
        evaluator.cost_vector(layout, queries)
        # The cache is keyed per layout: one pop drops all 20 entries at once.
        assert set(evaluator._query_costs) == {layout.layout_id}
        assert len(evaluator._query_costs[layout.layout_id]) == 20
        evaluator.forget(layout.layout_id)
        assert evaluator.cache_sizes() == (0, 0)

    def test_cost_matrix_rows_match_cost_vectors(self, simple_table, rng):
        evaluator = CostEvaluator(simple_table)
        layouts = [RoundRobinLayout(4), RangeLayoutBuilder("x").build(simple_table, [], 8, rng)]
        queries = [Query(predicate=between("x", float(i * 9), float(i * 9 + 12))) for i in range(6)]
        matrix = evaluator.cost_matrix(layouts, queries)
        assert matrix.shape == (2, 6)
        for row, layout in zip(matrix, layouts, strict=True):
            np.testing.assert_array_equal(row, evaluator.cost_vector(layout, queries))

    def test_cost_matrix_empty_layouts(self, simple_table):
        evaluator = CostEvaluator(simple_table)
        queries = [Query(predicate=between("x", 0.0, 1.0))]
        assert evaluator.cost_matrix([], queries).shape == (0, 1)

    def test_cost_vector_matches_unvectorized_metadata_walk(self, simple_table, rng):
        """The compiled fast path must equal the scalar oracle's numbers."""
        evaluator = CostEvaluator(simple_table)
        layout = RangeLayoutBuilder("x").build(simple_table, [], 8, rng)
        queries = [Query(predicate=between("x", float(i * 7), float(i * 7 + 5))) for i in range(10)]
        vector = evaluator.cost_vector(layout, queries)
        metadata = evaluator.metadata(layout)
        expected = np.array([metadata.accessed_fraction(q.predicate) for q in queries])
        np.testing.assert_array_equal(vector, expected)

    def test_costs_for_query_matches_query_cost(self, simple_table, rng):
        evaluator = CostEvaluator(simple_table)
        layouts = [RoundRobinLayout(4), RangeLayoutBuilder("x").build(simple_table, [], 8, rng)]
        query = Query(predicate=between("x", 5.0, 25.0))
        costs = evaluator.costs_for_query(layouts, query)
        assert costs == {
            layout.layout_id: evaluator.query_cost(layout, query) for layout in layouts
        }


class TestCacheChurn:
    """Eviction behavior under reorg churn: a long run that generates and
    retires layouts must keep every evaluator cache bounded."""

    def test_forget_under_generate_retire_churn(self, simple_table):
        evaluator = CostEvaluator(simple_table)
        queries = [Query(predicate=between("x", float(i * 3), float(i * 3 + 5))) for i in range(8)]
        survivors = []
        for round_index in range(30):
            layout = RoundRobinLayout(2 + round_index % 5)
            evaluator.cost_vector(layout, queries)
            survivors.append(layout.layout_id)
            if len(survivors) > 3:  # retire beyond a 3-state space
                evaluator.forget(survivors.pop(0))
        metadata_entries, cost_entries = evaluator.cache_sizes()
        assert metadata_entries == 3
        assert cost_entries == 3 * len(queries)
        assert set(evaluator._zonemaps) == set(survivors)

    def test_forget_unknown_layout_is_noop(self, simple_table):
        evaluator = CostEvaluator(simple_table)
        evaluator.forget("never-seen")
        assert evaluator.cache_sizes() == (0, 0)

    def test_forgotten_layout_recomputes_identically(self, simple_table):
        evaluator = CostEvaluator(simple_table)
        layout = RoundRobinLayout(4)
        query = Query(predicate=between("x", 10.0, 30.0))
        before = evaluator.query_cost(layout, query)
        evaluator.forget(layout.layout_id)
        assert evaluator.query_cost(layout, query) == before

    def test_compiled_workload_cache_bounded_lru(self, simple_table):
        evaluator = CostEvaluator(simple_table)
        layout = RoundRobinLayout(4)
        hot = [
            Query(predicate=between("x", 0.0, 5.0)),
            Query(predicate=between("y", 0.0, 5.0)),
        ]
        evaluator.cost_vector(layout, hot)
        hot_key = tuple(q.cache_key() for q in hot)
        assert hot_key in evaluator._compiled
        for i in range(CostEvaluator.COMPILED_CACHE_CAP + 10):
            fresh_layout = RoundRobinLayout(3)
            # A fresh two-query sample per round: mints compiled entries.
            evaluator.cost_vector(
                fresh_layout,
                [
                    Query(predicate=between("y", float(i), float(i) + 0.5)),
                    Query(predicate=between("x", float(i), float(i) + 0.5)),
                ],
            )
            # Evaluating the hot sample against a *new* layout re-reads the
            # compiled entry (costs are uncached there), refreshing its
            # LRU recency.
            evaluator.cost_vector(fresh_layout, hot)
        assert len(evaluator._compiled) <= CostEvaluator.COMPILED_CACHE_CAP
        assert hot_key in evaluator._compiled  # LRU keeps the hot sample

    def test_single_query_compilations_stay_out_of_the_lru(self, simple_table):
        """Per-stream-query misses must not churn the sample LRU: a long
        stream of distinct single queries would otherwise evict the
        expensive admission-sample compilations."""
        evaluator = CostEvaluator(simple_table)
        layout = RoundRobinLayout(4)
        sample = [
            Query(predicate=between("x", 0.0, 5.0)),
            Query(predicate=between("y", 0.0, 5.0)),
        ]
        evaluator.cost_matrix([layout], sample)
        assert len(evaluator._compiled) == 1
        for i in range(CostEvaluator.COMPILED_CACHE_CAP + 5):
            evaluator.costs_for_query(
                [layout], Query(predicate=between("x", float(i), float(i) + 0.25))
            )
        assert len(evaluator._compiled) == 1  # the sample is still compiled

    def test_compiled_workload_shared_across_layouts(self, simple_table, rng):
        """cost_matrix compiles the sample once for the whole state space."""
        evaluator = CostEvaluator(simple_table)
        queries = [Query(predicate=between("x", float(i * 9), float(i * 9 + 4))) for i in range(6)]
        layouts = [RoundRobinLayout(4), RoundRobinLayout(8),
                   RangeLayoutBuilder("x").build(simple_table, [], 8, rng)]
        evaluator.cost_matrix(layouts, queries)
        assert len(evaluator._compiled) == 1

    def test_forget_leaves_compiled_workloads_alone(self, simple_table):
        """Compiled samples are layout-independent: retiring a layout must
        not force recompiling the sample for the remaining states."""
        evaluator = CostEvaluator(simple_table)
        layout = RoundRobinLayout(4)
        queries = [
            Query(predicate=between("x", 0.0, 9.0)),
            Query(predicate=between("y", 0.0, 9.0)),
        ]
        evaluator.cost_vector(layout, queries)
        compiled_before = dict(evaluator._compiled)
        assert compiled_before
        evaluator.forget(layout.layout_id)
        assert evaluator._compiled == compiled_before


class TestRevalidate:
    """Surgical cost-cache revalidation across reorganizations."""

    def _reorg(self, evaluator, layout, table, seed):
        """Shuffle rows among two partitions; return the delta."""
        from repro.layouts import compute_reorg_delta_from_assignments
        from repro.layouts.metadata import build_layout_metadata

        old_metadata = evaluator.metadata(layout)
        old_assignment = layout.assign(table)
        new_assignment = old_assignment.copy()
        member = np.isin(old_assignment, [0, 1])
        new_assignment[member] = np.random.default_rng(seed).choice(
            [0, 1], size=int(member.sum())
        )
        new_metadata = build_layout_metadata(table, new_assignment)
        return compute_reorg_delta_from_assignments(
            old_metadata, new_metadata, old_assignment, new_assignment
        )

    def test_revalidate_repriced_costs_match_oracle(self, simple_table):
        evaluator = CostEvaluator(simple_table)
        layout = RoundRobinLayout(4)
        queries = [
            Query(predicate=between("x", float(i * 7), float(i * 7 + 9)))
            for i in range(8)
        ]
        evaluator.cost_vector(layout, queries)
        delta = self._reorg(evaluator, layout, simple_table, seed=3)
        migrated = evaluator.revalidate(layout.layout_id, delta)
        assert migrated == len(queries)
        metadata = evaluator.metadata(layout)
        assert metadata is delta.new_metadata
        for query in queries:
            cached = evaluator._query_costs[layout.layout_id][query.cache_key()]
            assert cached == metadata.accessed_fraction(query.predicate)
        # And the evaluator keeps serving the revalidated numbers.
        fresh = CostEvaluator(simple_table)
        fresh._metadata[layout.layout_id] = delta.new_metadata
        np.testing.assert_array_equal(
            evaluator.cost_vector(layout, queries),
            fresh.cost_vector(layout, queries),
        )

    def test_revalidate_only_evaluates_changed_partitions(self, simple_table):
        """An identity reorg (empty changed set) runs no zone-map kernels."""
        from repro.layouts import compute_reorg_delta
        from repro.layouts.metadata import build_layout_metadata

        evaluator = CostEvaluator(simple_table)
        layout = RoundRobinLayout(4)
        queries = [Query(predicate=between("x", 0.0, 50.0))]
        before = evaluator.cost_vector(layout, queries).copy()
        old_metadata = evaluator.metadata(layout)
        new_metadata = build_layout_metadata(simple_table, layout.assign(simple_table))
        delta = compute_reorg_delta(old_metadata, new_metadata)
        assert delta.changed == ()
        assert evaluator.revalidate(layout.layout_id, delta) == 1
        np.testing.assert_array_equal(evaluator.cost_vector(layout, queries), before)
        assert evaluator.metadata(layout) is new_metadata

    def test_revalidate_with_stale_metadata_degrades_to_forget(self, simple_table):
        from repro.layouts import compute_reorg_delta
        from repro.layouts.metadata import build_layout_metadata

        evaluator = CostEvaluator(simple_table)
        layout = RoundRobinLayout(4)
        evaluator.query_cost(layout, Query(predicate=between("x", 0.0, 5.0)))
        other = build_layout_metadata(simple_table, layout.assign(simple_table))
        delta = compute_reorg_delta(other, other)  # not the evaluator's object
        assert evaluator.revalidate(layout.layout_id, delta) == 0
        # Costs/masks dropped wholesale, but pricing resumes from the
        # delta's post-reorg metadata (stays registered).
        assert evaluator.cache_sizes() == (1, 0)
        assert evaluator._metadata[layout.layout_id] is delta.new_metadata

    def test_revalidate_drops_entries_without_masks(self, simple_table):
        """Cost floats whose mask was evicted cannot migrate: dropped, then
        lazily re-derived — never served stale."""
        evaluator = CostEvaluator(simple_table)
        layout = RoundRobinLayout(4)
        queries = [
            Query(predicate=between("x", float(i), float(i + 2))) for i in range(6)
        ]
        evaluator.cost_vector(layout, queries)
        # Simulate eviction of half the mask store.
        store = evaluator._masks[layout.layout_id]
        for query in queries[:3]:
            store.pop(query.cache_key())
        delta = self._reorg(evaluator, layout, simple_table, seed=5)
        assert evaluator.revalidate(layout.layout_id, delta) == 3
        costs = evaluator._query_costs[layout.layout_id]
        assert {q.cache_key() for q in queries[3:]} == set(costs)
        metadata = evaluator.metadata(layout)
        vector = evaluator.cost_vector(layout, queries)  # re-derives dropped half
        expected = np.array([metadata.accessed_fraction(q.predicate) for q in queries])
        np.testing.assert_array_equal(vector, expected)

    def test_revalidate_refreshes_stacked_slab(self, simple_table):
        evaluator = CostEvaluator(simple_table)
        layout = RoundRobinLayout(4)
        queries = [Query(predicate=between("x", 0.0, 30.0))]
        evaluator.cost_matrix([layout], queries)  # registers the stacked slab
        assert layout.layout_id in evaluator._stacked
        delta = self._reorg(evaluator, layout, simple_table, seed=9)
        evaluator.revalidate(layout.layout_id, delta)
        assert (
            evaluator._stacked.index_for(layout.layout_id)
            is evaluator._zonemaps[layout.layout_id]
        )

    def test_forget_discards_stacked_slab_and_masks(self, simple_table):
        evaluator = CostEvaluator(simple_table)
        layout = RoundRobinLayout(4)
        evaluator.cost_matrix([layout], [Query(predicate=between("x", 0.0, 5.0))])
        assert layout.layout_id in evaluator._stacked
        evaluator.forget(layout.layout_id)
        assert layout.layout_id not in evaluator._stacked
        assert layout.layout_id not in evaluator._masks
