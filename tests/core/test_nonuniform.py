"""Tests for the non-uniform movement-cost extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CostEvaluator,
    NonUniformReorganizer,
    layout_transport_fraction,
    movement_cost_matrix,
    repair_triangle,
)
from repro.layouts import RangeLayout, RangeLayoutBuilder, RoundRobinLayout
from repro.queries import Query, between


class TestTransportFraction:
    def test_identical_layouts_cost_zero(self, simple_table):
        layout = RoundRobinLayout(4)
        assert layout_transport_fraction(layout, layout, simple_table) == 0.0

    def test_relabelled_layout_costs_zero(self, simple_table):
        """Same partitioning, different partition ids: nothing moves."""
        a = RangeLayout("x", np.array([50.0]))
        # A second layout with the same boundary: identical row sets.
        b = RangeLayout("x", np.array([50.0]))
        assert layout_transport_fraction(a, b, simple_table) == 0.0

    def test_full_reshuffle_is_expensive(self, simple_table, rng):
        sorted_layout = RangeLayoutBuilder("x").build(simple_table, [], 8, rng)
        striped = RoundRobinLayout(8)
        fraction = layout_transport_fraction(sorted_layout, striped, simple_table)
        assert fraction > 0.5

    def test_refinement_is_cheap(self, simple_table):
        """Splitting each partition in two only moves within partitions —
        the coarse->fine direction keeps the largest-overlap halves."""
        coarse = RangeLayout("x", np.array([50.0]))
        fine = RangeLayout("x", np.array([25.0, 50.0, 75.0]))
        fraction = layout_transport_fraction(coarse, fine, simple_table)
        # Each fine partition is wholly contained in one coarse partition...
        # but only the largest contributor stays; about half moves.
        assert fraction <= 0.55

    def test_range_in_unit_interval(self, simple_table, rng):
        for k in (2, 4, 16):
            a = RangeLayoutBuilder("x").build(simple_table, [], k, rng)
            b = RoundRobinLayout(k)
            fraction = layout_transport_fraction(a, b, simple_table)
            assert 0.0 <= fraction < 1.0

    def test_empty_table(self, simple_schema):
        from repro.storage import Table

        table = Table(
            simple_schema,
            {"x": np.empty(0), "y": np.empty(0), "color": np.empty(0, dtype=np.int32)},
        )
        assert layout_transport_fraction(RoundRobinLayout(2), RoundRobinLayout(4), table) == 0.0


class TestCostMatrix:
    def test_shape_and_diagonal(self, simple_table, rng):
        layouts = [
            RangeLayoutBuilder("x").build(simple_table, [], 4, rng),
            RangeLayoutBuilder("y").build(simple_table, [], 4, rng),
            RoundRobinLayout(4),
        ]
        matrix = movement_cost_matrix(layouts, simple_table, alpha=10.0)
        assert matrix.shape == (3, 3)
        assert np.all(np.diag(matrix) == 0.0)
        assert np.all(matrix >= 0.0)
        assert np.allclose(matrix, matrix.T)

    def test_scaled_by_alpha(self, simple_table, rng):
        layouts = [
            RangeLayoutBuilder("x").build(simple_table, [], 4, rng),
            RoundRobinLayout(4),
        ]
        small = movement_cost_matrix(layouts, simple_table, alpha=1.0)
        large = movement_cost_matrix(layouts, simple_table, alpha=10.0)
        assert np.allclose(large, 10.0 * small)


class TestRepairTriangle:
    def test_noop_on_valid_metric(self):
        matrix = np.array([[0.0, 1.0, 2.0], [1.0, 0.0, 1.5], [2.0, 1.5, 0.0]])
        assert np.allclose(repair_triangle(matrix), matrix)

    def test_repairs_violation(self):
        matrix = np.array([[0.0, 1.0, 10.0], [1.0, 0.0, 1.0], [10.0, 1.0, 0.0]])
        repaired = repair_triangle(matrix)
        assert repaired[0, 2] == pytest.approx(2.0)  # via the middle state

    def test_output_satisfies_triangle(self, simple_table, rng):
        layouts = [
            RangeLayoutBuilder("x").build(simple_table, [], 4, rng),
            RangeLayoutBuilder("y").build(simple_table, [], 4, rng),
            RoundRobinLayout(4),
            RoundRobinLayout(8),
        ]
        matrix = repair_triangle(movement_cost_matrix(layouts, simple_table, 5.0))
        n = matrix.shape[0]
        for i in range(n):
            for j in range(n):
                for k in range(n):
                    assert matrix[i, j] <= matrix[i, k] + matrix[k, j] + 1e-9


class TestNonUniformReorganizer:
    def make(self, simple_table, rng, alpha=5.0):
        pool = {
            "by-x": RangeLayoutBuilder("x").build(simple_table, [], 8, rng),
            "by-y": RangeLayoutBuilder("y").build(simple_table, [], 8, rng),
        }
        evaluator = CostEvaluator(simple_table)
        return NonUniformReorganizer(pool, evaluator, alpha, initial_layout="by-x")

    def test_requires_pool(self, simple_table, rng):
        evaluator = CostEvaluator(simple_table)
        layout = RoundRobinLayout(4)
        with pytest.raises(ValueError):
            NonUniformReorganizer({"only": layout}, evaluator, 5.0)

    def test_switches_under_sustained_pressure(self, simple_table, rng):
        reorganizer = self.make(simple_table, rng)
        switched = False
        for _ in range(200):
            query = Query(predicate=between("y", 10, 12))
            decision = reorganizer.observe(query)
            switched = switched or decision.switched
        assert switched
        assert reorganizer.current == "by-y"

    def test_stays_on_matching_layout(self, simple_table, rng):
        reorganizer = self.make(simple_table, rng)
        for _ in range(100):
            query = Query(predicate=between("x", 10.0, 15.0))
            decision = reorganizer.observe(query)
            assert not decision.switched

    def test_ledger_accounting(self, simple_table, rng):
        reorganizer = self.make(simple_table, rng)
        for i in range(50):
            reorganizer.observe(Query(predicate=between("y", float(i % 40), float(i % 40) + 2)))
        summary = reorganizer.ledger.summary()
        assert summary.num_queries == 50
        assert summary.total_cost == pytest.approx(
            summary.total_query_cost + summary.total_reorg_cost
        )

    def test_movement_cheaper_than_uniform_alpha(self, simple_table, rng):
        """The whole point: related layouts cost less than a full α."""
        alpha = 5.0
        reorganizer = self.make(simple_table, rng, alpha=alpha)
        for _ in range(200):
            decision = reorganizer.observe(Query(predicate=between("y", 10, 12)))
            if decision.switched:
                assert decision.movement_cost <= alpha
                return
        raise AssertionError("never switched")
