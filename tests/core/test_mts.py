"""Tests for the classic BLS algorithm (Algorithms 1-3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BLSAlgorithm
from repro.core.mts import MTSDecision, PhaseStats


def make(states=("a", "b", "c"), alpha=2.0, seed=0, **kwargs):
    return BLSAlgorithm(states, alpha, np.random.default_rng(seed), **kwargs)


class TestConstruction:
    def test_requires_states(self):
        with pytest.raises(ValueError):
            make(states=())

    def test_requires_positive_alpha(self):
        with pytest.raises(ValueError):
            make(alpha=0.0)

    def test_initial_state_honoured(self):
        algorithm = make(initial_state="b")
        assert algorithm.current == "b"

    def test_unknown_initial_state(self):
        with pytest.raises(ValueError):
            make(initial_state="zz")

    def test_random_initial_state_in_set(self):
        algorithm = make()
        assert algorithm.current in {"a", "b", "c"}

    def test_duplicate_states_deduplicated(self):
        algorithm = BLSAlgorithm(["a", "a", "b"], 2.0, np.random.default_rng(0))
        assert algorithm.states == ["a", "b"]


class TestObserve:
    def test_costs_must_cover_all_states(self):
        algorithm = make()
        with pytest.raises(KeyError, match="missing"):
            algorithm.observe({"a": 0.1, "b": 0.1})

    def test_costs_must_be_in_unit_interval(self):
        algorithm = make()
        with pytest.raises(ValueError, match="out of"):
            algorithm.observe({"a": 1.5, "b": 0.1, "c": 0.1})
        with pytest.raises(ValueError, match="out of"):
            algorithm.observe({"a": -0.1, "b": 0.1, "c": 0.1})

    def test_service_in_current_state(self):
        algorithm = make(initial_state="a")
        decision = algorithm.observe({"a": 0.3, "b": 0.9, "c": 0.9})
        assert decision.serviced_in == "a"
        assert decision.service_cost == pytest.approx(0.3)

    def test_counters_accumulate(self):
        algorithm = make(initial_state="a")
        algorithm.observe({"a": 0.5, "b": 0.25, "c": 0.0})
        assert algorithm.counters["a"] == pytest.approx(0.5)
        assert algorithm.counters["b"] == pytest.approx(0.25)

    def test_no_switch_while_counter_below_alpha(self):
        algorithm = make(initial_state="a", alpha=2.0)
        decision = algorithm.observe({"a": 1.0, "b": 0.0, "c": 0.0})
        assert not decision.switched
        assert algorithm.current == "a"

    def test_switch_when_counter_full(self):
        algorithm = make(initial_state="a", alpha=2.0)
        algorithm.observe({"a": 1.0, "b": 0.0, "c": 0.0})
        decision = algorithm.observe({"a": 1.0, "b": 0.0, "c": 0.0})
        assert decision.switched
        assert decision.movement_cost == 2.0
        assert algorithm.current in {"b", "c"}

    def test_switch_targets_only_non_full_states(self):
        algorithm = make(initial_state="a", alpha=1.0)
        algorithm.observe({"a": 0.5, "b": 0.8, "c": 0.0})
        decision = algorithm.observe({"a": 0.5, "b": 0.3, "c": 0.0})
        # a reached 1.0 and b reached 1.1 (>= alpha); only c is available.
        assert decision.switched_to == "c"

    def test_full_counter_exactly_alpha(self):
        algorithm = make(initial_state="a", alpha=1.0)
        decision = algorithm.observe({"a": 1.0, "b": 0.0, "c": 0.0})
        assert decision.switched  # counter == alpha counts as full

    def test_phase_reset_when_all_full(self):
        algorithm = make(initial_state="a", alpha=1.0)
        decision = algorithm.observe({"a": 1.0, "b": 1.0, "c": 1.0})
        assert decision.phase_reset
        assert algorithm.phase_index == 2
        assert all(c == 0.0 for c in algorithm.counters.values())
        assert algorithm.active == {"a", "b", "c"}

    def test_reset_without_stay_moves_randomly(self):
        switched_any = False
        for seed in range(20):
            algorithm = make(initial_state="a", alpha=1.0, seed=seed, stay_on_reset=False)
            decision = algorithm.observe({"a": 1.0, "b": 1.0, "c": 1.0})
            if decision.switched:
                switched_any = True
                assert decision.movement_cost == 1.0  # == alpha
        assert switched_any

    def test_stay_on_reset_never_moves_at_reset(self):
        for seed in range(20):
            algorithm = make(initial_state="a", alpha=1.0, seed=seed, stay_on_reset=True)
            decision = algorithm.observe({"a": 1.0, "b": 1.0, "c": 1.0})
            assert not decision.switched
            assert algorithm.current == "a"

    def test_run_processes_whole_stream(self):
        algorithm = make(initial_state="a", alpha=2.0)
        decisions = algorithm.run([{"a": 0.5, "b": 0.5, "c": 0.5}] * 10)
        assert len(decisions) == 10
        assert all(isinstance(d, MTSDecision) for d in decisions)

    def test_deterministic_given_seed(self):
        stream = [{"a": 0.9, "b": 0.1, "c": 0.5}] * 50
        runs = []
        for _ in range(2):
            algorithm = make(initial_state="a", alpha=2.0, seed=7)
            decisions = algorithm.run(stream)
            runs.append([d.switched_to for d in decisions])
        assert runs[0] == runs[1]


class TestPhaseSemantics:
    def test_counters_only_accumulate_for_active(self):
        algorithm = make(initial_state="a", alpha=1.0)
        algorithm.observe({"a": 0.2, "b": 1.0, "c": 0.2})  # b becomes full
        algorithm.observe({"a": 0.2, "b": 1.0, "c": 0.2})
        # b's counter froze at 1.0 once it left the active set.
        assert algorithm.counters["b"] == pytest.approx(1.0)

    def test_current_state_counter_below_alpha_invariant(self):
        algorithm = make(initial_state="a", alpha=2.0, seed=3)
        rng = np.random.default_rng(0)
        for _ in range(200):
            costs = {s: float(rng.uniform(0, 1)) for s in "abc"}
            algorithm.observe(costs)
            assert algorithm.counters[algorithm.current] < algorithm.alpha

    def test_total_service_cost_matches_ledger(self):
        algorithm = make(initial_state="a", alpha=2.0)
        stream = [{"a": 0.3, "b": 0.2, "c": 0.1}] * 30
        decisions = algorithm.run(stream)
        # Service cost each step equals the pre-switch state's cost.
        for decision in decisions:
            assert decision.service_cost in (0.3, 0.2, 0.1)

    def test_phase_count_grows_with_stream(self):
        algorithm = make(initial_state="a", alpha=1.0)
        algorithm.run([{"a": 1.0, "b": 1.0, "c": 1.0}] * 5)
        assert algorithm.phase_index == 6


class TestPhaseStats:
    def test_skip_weights_empty(self):
        assert PhaseStats().skip_weights() == {}

    def test_skip_weights_average(self):
        stats = PhaseStats()
        stats.record({"a": 0.2, "b": 1.0})
        stats.record({"a": 0.4, "b": 1.0})
        weights = stats.skip_weights()
        assert weights["a"] == pytest.approx(0.7)
        assert weights["b"] == pytest.approx(0.0)

    def test_weights_published_after_reset(self):
        algorithm = make(initial_state="a", alpha=1.0)
        algorithm.observe({"a": 1.0, "b": 1.0, "c": 0.5})
        algorithm.observe({"a": 1.0, "b": 1.0, "c": 0.5})  # ends phase
        assert algorithm.last_phase_weights  # previous phase recorded
