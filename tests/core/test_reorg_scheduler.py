"""Scheduler tests: async/sync equivalence, epochs, and ledger truthfulness."""

from __future__ import annotations

import math
import shutil
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.core import CostEvaluator, MovementAmortizer, Reorganizer, ReorganizerConfig
from repro.core.reorg_scheduler import ReorgScheduler
from repro.layouts import CompiledWorkload, RangeLayoutBuilder, RoundRobinLayout, ZoneMapIndex
from repro.queries import Query, between
from repro.storage import ColumnSpec, IncrementalStore, PartitionStore, QueryExecutor, Schema, reorganize


@pytest.fixture
def store(tmp_path):
    return PartitionStore(tmp_path / "store")


@pytest.fixture
def target(simple_table, rng):
    return RangeLayoutBuilder("x").build(simple_table, [], 6, rng)


@pytest.fixture
def queries(rng):
    lows = rng.uniform(0.0, 80.0, size=12)
    return [Query(predicate=between("x", float(lo), float(lo) + 15.0)) for lo in lows]


class TestDifferentialEquivalence:
    """Pipeline completion is bit-for-bit a synchronous ``reorganize()``."""

    def test_async_completion_matches_sync(
        self, store, simple_table, target, queries, tmp_path
    ):
        # --- synchronous reference -------------------------------------
        sync_store = PartitionStore(tmp_path / "sync")
        sync_stored = sync_store.materialize(simple_table, RoundRobinLayout(5))
        sync_new, _ = reorganize(sync_store, sync_stored, target, simple_table.schema)
        sync_evaluator = CostEvaluator(simple_table)
        sync_evaluator.register_metadata(target.layout_id, sync_new.metadata)
        sync_costs = sync_evaluator.cost_vector(target, queries)

        # --- pipelined run, caches migrated per partial commit ---------
        stored = store.materialize(simple_table, RoundRobinLayout(5))
        executor = QueryExecutor(store)
        evaluator = CostEvaluator(simple_table)
        scheduler = ReorgScheduler(
            store, executor=executor, evaluator=evaluator, step_partitions=2
        )
        scheduler.start(stored, target, simple_table.schema)
        new_stored, _ = scheduler.drain()

        # metadata: bit-for-bit the synchronous snapshot
        assert new_stored.metadata == sync_new.metadata
        assert evaluator._metadata[target.layout_id] is new_stored.metadata

        # zone maps: the incrementally migrated index agrees with a fresh
        # compile of the synchronous metadata on every predicate mask
        migrated = evaluator._zonemaps[target.layout_id]
        fresh = ZoneMapIndex(sync_new.metadata)
        for query in queries:
            np.testing.assert_array_equal(
                migrated._mask(query.predicate, False),
                fresh._mask(query.predicate, False),
            )
            np.testing.assert_array_equal(
                migrated._mask(query.predicate, True),
                fresh._mask(query.predicate, True),
            )

        # cached costs: pricing through the migrated caches returns the
        # synchronous evaluator's floats exactly
        np.testing.assert_array_equal(
            evaluator.cost_vector(target, queries), sync_costs
        )
        assert (
            evaluator._query_costs[target.layout_id]
            == sync_evaluator._query_costs[target.layout_id]
        )

        # stacked slabs: the migrated stack's tensor equals one built from
        # the synchronous metadata
        compiled = CompiledWorkload([query.predicate for query in queries])
        evaluator._ensure_stacked(target)
        migrated_tensor = evaluator._stacked.prune_tensor(compiled, [target.layout_id])
        sync_evaluator._ensure_stacked(target)
        sync_tensor = sync_evaluator._stacked.prune_tensor(compiled, [target.layout_id])
        np.testing.assert_array_equal(migrated_tensor, sync_tensor)

        # executor plans: the pre-warmed index is chained onto the final
        # snapshot, and executing returns the same physical counters
        warm = executor._zonemaps[target.layout_id]
        assert warm.metadata is new_stored.metadata
        sync_executor = QueryExecutor(sync_store)
        for query in queries[:4]:
            ours = executor.execute(new_stored, query)
            theirs = sync_executor.execute(sync_new, query)
            assert ours.rows_matched == theirs.rows_matched
            assert ours.rows_scanned == theirs.rows_scanned
            assert ours.partitions_scanned == theirs.partitions_scanned

    def test_start_leaves_priced_target_untouched_mid_flight(
        self, store, simple_table, target, queries
    ):
        # The decision layer already prices the target from logical
        # metadata; seeding the staging snapshot over it would make
        # mid-flight decisions see the target as free.
        stored = store.materialize(simple_table, RoundRobinLayout(5))
        evaluator = CostEvaluator(simple_table)
        logical = evaluator.cost_vector(target, queries)
        assert float(logical.max()) > 0.0
        scheduler = ReorgScheduler(store, evaluator=evaluator, step_partitions=2)
        scheduler.start(stored, target, simple_table.schema)
        scheduler.tick()
        np.testing.assert_array_equal(evaluator.cost_vector(target, queries), logical)
        new_stored, _ = scheduler.drain()
        # the final commit swaps the evaluator onto the physical truth
        assert evaluator._metadata[target.layout_id] is new_stored.metadata
        np.testing.assert_array_equal(evaluator.cost_vector(target, queries), logical)

    def test_unpriced_target_priced_logically_mid_flight(
        self, store, simple_table, target, queries
    ):
        # A target the evaluator has never priced must not read as free
        # while the move is in flight: pricing derives the logical
        # metadata on demand, untouched by the staging snapshot.
        stored = store.materialize(simple_table, RoundRobinLayout(5))
        evaluator = CostEvaluator(simple_table)
        scheduler = ReorgScheduler(store, evaluator=evaluator, step_partitions=2)
        scheduler.start(stored, target, simple_table.schema)
        scheduler.tick()
        mid_flight = evaluator.cost_vector(target, queries)
        assert float(mid_flight.max()) > 0.0
        reference = CostEvaluator(simple_table).cost_vector(target, queries)
        np.testing.assert_array_equal(mid_flight, reference)
        new_stored, _ = scheduler.drain()
        # the commit swaps in the physical truth (same floats here: the
        # layout is value-deterministic, so logical == physical)
        assert evaluator._metadata[target.layout_id] is new_stored.metadata
        np.testing.assert_array_equal(
            evaluator.cost_vector(target, queries), reference
        )

    def test_adopt_from_empty_donor_leaves_state_untouched(
        self, simple_table, target, queries
    ):
        evaluator = CostEvaluator(simple_table)
        before = evaluator.cost_vector(target, queries)
        evaluator.adopt(CostEvaluator(simple_table), target.layout_id)
        assert target.layout_id in evaluator._metadata  # nothing wiped
        np.testing.assert_array_equal(evaluator.cost_vector(target, queries), before)
        with pytest.raises(ValueError, match="different table"):
            other_table = simple_table  # same values, different object needed
            import copy

            evaluator.adopt(CostEvaluator(copy.copy(other_table)), target.layout_id)

    def test_invalid_alpha_does_not_half_start(self, store, simple_table, target):
        stored = store.materialize(simple_table, RoundRobinLayout(4))
        scheduler = ReorgScheduler(store, alpha=-1.0)
        with pytest.raises(ValueError):
            scheduler.start(stored, target, simple_table.schema)
        assert not scheduler.active  # no half-started state left behind
        scheduler.alpha = 5.0
        scheduler.start(stored, target, simple_table.schema)
        scheduler.drain()
        assert scheduler.charged == 5.0

    def test_same_id_repartition_revalidates_old_caches(
        self, store, simple_table, rng, queries
    ):
        layout = RangeLayoutBuilder("x").build(simple_table, [], 6, rng)
        stored = store.materialize(simple_table, layout)
        evaluator = CostEvaluator(simple_table)
        evaluator.register_metadata(layout.layout_id, stored.metadata)
        before = evaluator.cost_vector(layout, queries)

        scheduler = ReorgScheduler(store, evaluator=evaluator, step_partitions=2)
        scheduler.start(stored, layout, simple_table.schema)
        # mid-flight the evaluator still prices the old epoch
        scheduler.tick()
        np.testing.assert_array_equal(evaluator.cost_vector(layout, queries), before)
        new_stored, _ = scheduler.drain()
        assert evaluator._metadata[layout.layout_id] is new_stored.metadata
        np.testing.assert_array_equal(evaluator.cost_vector(layout, queries), before)


class TestInterleaving:
    """Queries issued mid-pipeline see one epoch, never a mixture."""

    def test_queries_see_old_epoch_then_new(
        self, store, simple_table, target, queries
    ):
        stored = store.materialize(simple_table, RoundRobinLayout(5))
        executor = QueryExecutor(store)
        old_expected = {
            id(q): executor.execute(stored, q) for q in queries
        }
        scheduler = ReorgScheduler(store, executor=executor, step_partitions=1)
        scheduler.start(stored, target, simple_table.schema)
        position = 0
        flipped = False
        while scheduler.active:
            query = queries[position % len(queries)]
            outcome = scheduler.serve(query)
            reference = old_expected[id(query)]
            assert outcome.partitions_total == reference.partitions_total
            assert outcome.rows_scanned == reference.rows_scanned
            assert outcome.rows_matched == reference.rows_matched
            position += 1
            ticked = scheduler.tick()
            flipped = flipped or ticked.completed
        assert flipped
        new_stored = scheduler.visible
        assert new_stored is scheduler.pipeline.result[0]
        for query in queries:
            outcome = scheduler.serve(query)
            assert outcome.partitions_total == len(new_stored.partitions)
            assert outcome.rows_matched == old_expected[id(query)].rows_matched

    def test_tick_without_start_returns_none(self, store):
        scheduler = ReorgScheduler(store)
        assert scheduler.tick() is None

    def test_double_start_rejected(self, store, simple_table, target):
        stored = store.materialize(simple_table, RoundRobinLayout(4))
        scheduler = ReorgScheduler(store)
        scheduler.start(stored, target, simple_table.schema)
        with pytest.raises(RuntimeError):
            scheduler.start(stored, target, simple_table.schema)

    def test_serve_requires_executor(self, store, simple_table, target, range_query):
        stored = store.materialize(simple_table, RoundRobinLayout(4))
        scheduler = ReorgScheduler(store)
        scheduler.start(stored, target, simple_table.schema)
        with pytest.raises(RuntimeError):
            scheduler.serve(range_query)

    def test_on_complete_fires_once_at_commit(self, store, simple_table, target):
        stored = store.materialize(simple_table, RoundRobinLayout(4))
        scheduler = ReorgScheduler(store, step_partitions=2)
        landed = []
        scheduler.start(
            stored,
            target,
            simple_table.schema,
            on_complete=lambda new_stored, result: landed.append(
                (new_stored, result)
            ),
        )
        while scheduler.active:
            assert landed == []
            scheduler.tick()
        assert len(landed) == 1
        assert landed[0][0] is scheduler.pipeline.result[0]


class TestLedgerEquality:
    """Pipelining never changes the competitive-ratio ledger."""

    def test_installments_sum_to_alpha_exactly(
        self, store, simple_table, target
    ):
        alpha = 80.0
        stored = store.materialize(simple_table, RoundRobinLayout(5))
        scheduler = ReorgScheduler(store, alpha=alpha, step_partitions=1)
        scheduler.start(stored, target, simple_table.schema)
        charges = []
        while scheduler.active:
            charges.append(scheduler.tick().movement_charge)
        assert scheduler.charged == alpha
        assert math.fsum(charges) == pytest.approx(alpha, abs=1e-9)
        assert all(charge >= 0.0 for charge in charges)

    def test_abort_refunds_emitted_installments(self, store, simple_table, target):
        # An aborted move must not leave its partial installments on the
        # ledger: abort returns the refund, and a retry charges a clean α.
        alpha = 5.0
        stored = store.materialize(simple_table, RoundRobinLayout(5))
        scheduler = ReorgScheduler(store, alpha=alpha, step_partitions=1)
        scheduler.start(stored, target, simple_table.schema)
        charged = 0.0
        for _ in range(3):
            charged += scheduler.tick().movement_charge
        assert charged > 0.0
        refund = scheduler.abort()
        assert refund == charged  # net charge for the aborted move is zero
        # abort clears the abandoned flight's identity entirely
        assert scheduler._old_layout_id is None
        assert scheduler._same_id is False
        scheduler.start(stored, target, simple_table.schema)
        retry_charges = []
        while scheduler.active:
            retry_charges.append(scheduler.tick().movement_charge)
        assert scheduler.charged == alpha
        assert math.fsum(retry_charges) == pytest.approx(alpha, abs=1e-9)
        assert scheduler.abort() == 0.0  # nothing in flight: nothing to refund

    def test_amortizer_monotone_under_shrinking_estimate(self):
        amortizer = MovementAmortizer(80.0)
        # a shrinking work estimate can lower the cumulative fraction;
        # charges must clamp at zero, never claw money back
        assert amortizer.charge(0.5) == pytest.approx(40.0)
        assert amortizer.charge(0.3) == 0.0
        assert amortizer.charge(0.6) == pytest.approx(8.0)
        assert amortizer.settle() == pytest.approx(32.0)
        assert amortizer.charged == 80.0
        assert amortizer.settle() == 0.0

    def test_amortizer_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            MovementAmortizer(-1.0)

    def test_amortizer_accepts_zero_alpha(self):
        # α = 0.0 is a valid tracked budget: every installment is 0.0 and
        # the ledger settles at exactly zero (distinct from "untracked").
        amortizer = MovementAmortizer(0.0)
        assert amortizer.charge(0.5) == 0.0
        assert amortizer.settle() == 0.0
        assert amortizer.charged == 0.0

    def test_zero_alpha_attaches_tracked_budget(self, store, simple_table, target):
        # Regression for the falsy-zero bug: `if self.alpha` treated an
        # explicit alpha=0.0 like alpha=None and attached no amortizer.
        stored = store.materialize(simple_table, RoundRobinLayout(5))
        scheduler = ReorgScheduler(store, alpha=0.0, step_partitions=1)
        scheduler.start(stored, target, simple_table.schema)
        assert scheduler._amortizer is not None  # tracked, not dropped
        charges = []
        while scheduler.active:
            charges.append(scheduler.tick().movement_charge)
        assert scheduler.charged == 0.0
        assert charges and all(charge == 0.0 for charge in charges)

    def test_decision_charge_equals_pipeline_total(
        self, store, simple_table, target, rng
    ):
        # The D-UMTS decision charges α the moment the switch is decided;
        # executing that switch through the pipeline must charge the very
        # same total, regardless of the step budget.
        config = ReorganizerConfig(alpha=40.0)
        reorganizer = Reorganizer("old", config, rng)
        reorganizer.add_layout("new")
        decision_charge = 0.0
        costs = {"old": 1.0, "new": 0.0}
        while True:
            step = reorganizer.observe(costs)
            decision_charge += step.movement_cost
            if step.decision.switched:
                break
        assert decision_charge == config.alpha

        for step_partitions in (1, 3, 100):
            stored = store.materialize(simple_table, RoundRobinLayout(5))
            scheduler = ReorgScheduler(
                store, alpha=config.alpha, step_partitions=step_partitions
            )
            scheduler.start(stored, target, simple_table.schema)
            installments = []
            while scheduler.active:
                installments.append(scheduler.tick().movement_charge)
            assert scheduler.charged == decision_charge
            assert math.fsum(installments) == pytest.approx(decision_charge, abs=1e-9)


class TestIncrementalStoreAsync:
    def _batches(self, simple_schema, count=4, rows=200):
        from repro.storage import Table

        batches = []
        for seed in range(count):
            generator = np.random.default_rng(1000 + seed)
            batches.append(
                Table(
                    simple_schema,
                    {
                        "x": generator.uniform(0.0, 100.0, size=rows),
                        "y": generator.integers(0, 50, size=rows).astype(np.int64),
                        "color": generator.integers(0, 3, size=rows).astype(np.int32),
                    },
                )
            )
        return batches

    def test_consolidate_async_matches_sync(
        self, tmp_path, simple_schema, simple_table, rng, queries
    ):
        batches = self._batches(simple_schema)
        layout = RoundRobinLayout(3)
        target = RangeLayoutBuilder("x").build(simple_table, [], 5, rng)

        def build(root):
            store = PartitionStore(tmp_path / root)
            evaluator = CostEvaluator(simple_table)
            incremental = IncrementalStore(store, simple_schema, layout, evaluator)
            for batch in batches:
                incremental.ingest(batch)
            return store, evaluator, incremental

        _, sync_evaluator, sync_incremental = build("sync")
        sync_incremental.consolidate(target)

        store, evaluator, incremental = build("async")
        pre_consolidation = incremental.stored()
        scheduler = ReorgScheduler(
            store, evaluator=evaluator, alpha=80.0, step_partitions=2
        )
        incremental.consolidate_async(target, scheduler)
        assert scheduler.active
        # until the final commit the store still serves its old snapshot
        assert incremental.stored().metadata is pre_consolidation.metadata
        scheduler.drain()

        assert incremental.layout is target
        assert incremental.stored().metadata == sync_incremental.stored().metadata
        assert incremental.num_partitions == sync_incremental.num_partitions
        assert incremental._next_partition_id == sync_incremental._next_partition_id
        np.testing.assert_array_equal(
            evaluator.cost_vector(target, queries),
            sync_evaluator.cost_vector(target, queries),
        )
        # ingestion continues under the new layout, both modes agreeing
        extra = self._batches(simple_schema, count=1, rows=100)[0]
        incremental.ingest(extra)
        sync_incremental.ingest(extra)
        assert incremental.stored().metadata == sync_incremental.stored().metadata

    def test_consolidate_async_rejects_busy_scheduler(
        self, tmp_path, simple_schema, simple_table, rng
    ):
        batches = self._batches(simple_schema, count=2)
        store = PartitionStore(tmp_path / "busy")
        incremental = IncrementalStore(store, simple_schema, RoundRobinLayout(3))
        for batch in batches:
            incremental.ingest(batch)
        target = RangeLayoutBuilder("x").build(simple_table, [], 5, rng)
        other = RangeLayoutBuilder("y").build(simple_table, [], 4, rng)
        scheduler = ReorgScheduler(store, step_partitions=1)
        incremental.consolidate_async(target, scheduler)
        with pytest.raises(RuntimeError):
            incremental.consolidate_async(other, scheduler)
        scheduler.drain()

    def test_sync_consolidate_rejected_while_async_in_flight(
        self, tmp_path, simple_schema, simple_table, rng
    ):
        # A sync consolidate (or a second async one via a fresh scheduler)
        # would rewrite the files the in-flight pipeline is reading.
        batches = self._batches(simple_schema, count=2)
        store = PartitionStore(tmp_path / "cross")
        incremental = IncrementalStore(store, simple_schema, RoundRobinLayout(3))
        for batch in batches:
            incremental.ingest(batch)
        target = RangeLayoutBuilder("x").build(simple_table, [], 5, rng)
        other = RangeLayoutBuilder("y").build(simple_table, [], 4, rng)
        scheduler = ReorgScheduler(store, step_partitions=1)
        incremental.consolidate_async(target, scheduler)
        with pytest.raises(RuntimeError, match="consolidation is already in flight"):
            incremental.consolidate(other)
        with pytest.raises(RuntimeError, match="consolidation is already in flight"):
            incremental.consolidate_async(other, ReorgScheduler(store))
        scheduler.drain()

    def test_abort_consolidation_recovers_the_store(
        self, tmp_path, simple_schema, simple_table, rng
    ):
        batches = self._batches(simple_schema, count=3)
        store = PartitionStore(tmp_path / "abort")
        incremental = IncrementalStore(store, simple_schema, RoundRobinLayout(3))
        for batch in batches[:2]:
            incremental.ingest(batch)
        before = incremental.stored()
        target = RangeLayoutBuilder("x").build(simple_table, [], 5, rng)
        scheduler = ReorgScheduler(store, step_partitions=1)
        incremental.consolidate_async(target, scheduler)
        scheduler.tick()
        incremental.abort_consolidation(scheduler)
        assert not scheduler.active
        assert not store.staging_path(target.layout_id).exists()
        # the store still serves and ingests its pre-consolidation state
        assert incremental.stored().metadata is before.metadata
        assert all(p.path.exists() for p in before.partitions)
        incremental.ingest(batches[2])
        # and a fresh consolidation can start over
        incremental.consolidate_async(target, scheduler)
        scheduler.drain()
        assert incremental.layout is target

    def test_direct_scheduler_abort_releases_ingest_guard(
        self, tmp_path, simple_schema, simple_table, rng
    ):
        # Aborting through the scheduler (the path its own docstring
        # advertises) must not leave the store wedged behind a dead
        # pipeline.
        batches = self._batches(simple_schema, count=2)
        store = PartitionStore(tmp_path / "direct-abort")
        incremental = IncrementalStore(store, simple_schema, RoundRobinLayout(3))
        incremental.ingest(batches[0])
        target = RangeLayoutBuilder("x").build(simple_table, [], 5, rng)
        scheduler = ReorgScheduler(store, step_partitions=1)
        incremental.consolidate_async(target, scheduler)
        scheduler.tick()
        scheduler.abort()
        incremental.ingest(batches[1])  # guard released, no wedge
        assert incremental.batches_ingested == 2

    def test_abort_consolidation_requires_the_driving_scheduler(
        self, tmp_path, simple_schema, simple_table, rng
    ):
        # Aborting a different (idle) scheduler must not release the
        # ingest guard while the real pipeline keeps running.
        batches = self._batches(simple_schema, count=2)
        store = PartitionStore(tmp_path / "wrong-sched")
        incremental = IncrementalStore(store, simple_schema, RoundRobinLayout(3))
        incremental.ingest(batches[0])
        target = RangeLayoutBuilder("x").build(simple_table, [], 5, rng)
        driving = ReorgScheduler(store, step_partitions=1)
        incremental.consolidate_async(target, driving)
        other = ReorgScheduler(store, step_partitions=1)
        with pytest.raises(ValueError, match="not the one driving"):
            incremental.abort_consolidation(other)
        assert incremental.consolidating  # guard still armed
        incremental.abort_consolidation(driving)
        assert not incremental.consolidating
        incremental.ingest(batches[1])

    def test_abort_consolidation_without_one_raises(self, tmp_path, simple_schema):
        # With nothing in flight the guard must refuse, not silently
        # abort whatever unrelated reorg the passed scheduler is running.
        store = PartitionStore(tmp_path / "none")
        incremental = IncrementalStore(store, simple_schema, RoundRobinLayout(3))
        with pytest.raises(RuntimeError, match="no async consolidation"):
            incremental.abort_consolidation(ReorgScheduler(store))

    def test_consolidate_async_rejects_foreign_store_scheduler(
        self, tmp_path, simple_schema, simple_table, rng
    ):
        store = PartitionStore(tmp_path / "mine")
        foreign = ReorgScheduler(PartitionStore(tmp_path / "theirs"))
        incremental = IncrementalStore(store, simple_schema, RoundRobinLayout(3))
        incremental.ingest(self._batches(simple_schema, count=1)[0])
        target = RangeLayoutBuilder("x").build(simple_table, [], 5, rng)
        with pytest.raises(ValueError, match="different PartitionStore"):
            incremental.consolidate_async(target, foreign)

    def test_scheduler_abort_without_start_is_noop(self, store):
        assert ReorgScheduler(store).abort() == 0.0  # must not raise

    def test_scheduler_rejects_invalid_step_budget_at_construction(self, store):
        # Fail fast: a bad --reorg-step-partitions must not surface only
        # at the first switch, minutes into an experiment run.
        with pytest.raises(ValueError, match="step_partitions"):
            ReorgScheduler(store, step_partitions=0)

    def test_scheduler_abort_drops_seeded_caches(
        self, store, simple_table, target, queries
    ):
        stored = store.materialize(simple_table, RoundRobinLayout(5))
        executor = QueryExecutor(store)
        evaluator = CostEvaluator(simple_table)
        scheduler = ReorgScheduler(
            store, executor=executor, evaluator=evaluator, step_partitions=1
        )
        scheduler.start(stored, target, simple_table.schema)
        for _ in range(3):
            scheduler.tick()
        scheduler.abort()
        assert not scheduler.active
        assert scheduler._old_layout_id is None  # no stale flight identity
        assert scheduler._same_id is False
        assert target.layout_id not in evaluator._metadata
        assert target.layout_id not in executor._zonemaps
        # restartable, and completion still matches the synchronous result
        scheduler.start(stored, target, simple_table.schema)
        new_stored, result = scheduler.drain()
        assert result.delta is not None
        assert evaluator._metadata[target.layout_id] is new_stored.metadata

    def test_ingest_guard_opt_out_still_rejects_mid_flight(
        self, tmp_path, simple_schema, simple_table, rng
    ):
        # allow_ingest_during_consolidation=False restores the pre-sidecar
        # contract: refuse mid-flight appends, work again after the commit.
        batches = self._batches(simple_schema, count=3)
        store = PartitionStore(tmp_path / "guard")
        incremental = IncrementalStore(
            store,
            simple_schema,
            RoundRobinLayout(3),
            allow_ingest_during_consolidation=False,
        )
        for batch in batches[:2]:
            incremental.ingest(batch)
        target = RangeLayoutBuilder("x").build(simple_table, [], 5, rng)
        scheduler = ReorgScheduler(store, step_partitions=1)
        incremental.consolidate_async(target, scheduler)
        rows_before = incremental.total_rows
        with pytest.raises(RuntimeError, match="consolidation is in flight"):
            incremental.ingest(batches[2])
        assert incremental.total_rows == rows_before  # nothing half-applied
        scheduler.drain()
        assert incremental.total_rows == rows_before
        incremental.ingest(batches[2])  # post-commit ingest works again
        assert incremental.total_rows == rows_before + batches[2].num_rows


class TestDualEpochIngest:
    """Ingest during an in-flight consolidation: visible now, replayed at commit."""

    def _batches(self, simple_schema, count=4, rows=200):
        from repro.storage import Table

        batches = []
        for seed in range(count):
            generator = np.random.default_rng(1000 + seed)
            batches.append(
                Table(
                    simple_schema,
                    {
                        "x": generator.uniform(0.0, 100.0, size=rows),
                        "y": generator.integers(0, 50, size=rows).astype(np.int64),
                        "color": generator.integers(0, 3, size=rows).astype(np.int32),
                    },
                )
            )
        return batches

    def test_matches_serialized_consolidate_then_ingest_bit_for_bit(
        self, tmp_path, simple_schema, simple_table, rng, queries
    ):
        batches = self._batches(simple_schema, count=5)
        layout = RoundRobinLayout(3)
        target = RangeLayoutBuilder("x").build(simple_table, [], 5, rng)

        # --- serialized reference: consolidate fully, then ingest ------
        ref_store = PartitionStore(tmp_path / "ref")
        ref_evaluator = CostEvaluator(simple_table)
        reference = IncrementalStore(ref_store, simple_schema, layout, ref_evaluator)
        for batch in batches[:3]:
            reference.ingest(batch)
        reference.consolidate(target)
        for batch in batches[3:]:
            reference.ingest(batch)

        # --- dual-epoch run: the same late batches arrive mid-flight ---
        store = PartitionStore(tmp_path / "dual")
        evaluator = CostEvaluator(simple_table)
        incremental = IncrementalStore(store, simple_schema, layout, evaluator)
        for batch in batches[:3]:
            incremental.ingest(batch)
        scheduler = ReorgScheduler(store, evaluator=evaluator, step_partitions=1)
        incremental.consolidate_async(target, scheduler)
        pending = list(batches[3:])
        while scheduler.active:
            scheduler.tick()
            if pending and scheduler.active:
                incremental.ingest(pending.pop(0))
        assert not pending  # every late batch arrived while in flight

        # bookkeeping equality: metadata, ids, counters
        assert incremental.layout is target
        assert incremental.stored().metadata == reference.stored().metadata
        assert incremental._next_partition_id == reference._next_partition_id
        assert incremental.batches_ingested == reference.batches_ingested
        # file equality: same relative paths, same bytes, partition by
        # partition — the post-commit store IS the serialized one
        ours = incremental.stored().partitions
        theirs = reference.stored().partitions
        assert len(ours) == len(theirs)
        for mine, ref in zip(ours, theirs):
            assert mine.partition_id == ref.partition_id
            assert mine.path.relative_to(store.root) == ref.path.relative_to(ref_store.root)
            assert mine.path.read_bytes() == ref.path.read_bytes()
        # evaluator equality: cached prices migrated through the sidecar
        # deltas and the replay agree with the serialized evaluator
        np.testing.assert_array_equal(
            evaluator.cost_vector(target, queries),
            ref_evaluator.cost_vector(target, queries),
        )

    def test_sidecar_rows_queryable_before_commit(
        self, tmp_path, simple_schema, simple_table, rng
    ):
        batches = self._batches(simple_schema, count=3)
        store = PartitionStore(tmp_path / "visible")
        incremental = IncrementalStore(store, simple_schema, RoundRobinLayout(3))
        for batch in batches[:2]:
            incremental.ingest(batch)
        target = RangeLayoutBuilder("x").build(simple_table, [], 5, rng)
        executor = QueryExecutor(store)
        scheduler = ReorgScheduler(store, executor=executor, step_partitions=1)
        incremental.consolidate_async(target, scheduler)
        scheduler.tick()
        rows_before = incremental.total_rows
        written = incremental.ingest(batches[2])
        assert written > 0
        assert incremental.consolidating  # still in flight: sidecar path
        assert incremental.total_rows == rows_before + batches[2].num_rows
        everything = Query(predicate=between("x", -1.0, 101.0))
        served = executor.execute(incremental.stored(), everything)
        assert served.rows_matched == incremental.total_rows
        scheduler.drain()
        # nothing dropped by the commit's replay either
        served = executor.execute(incremental.stored(), everything)
        assert served.rows_matched == sum(b.num_rows for b in batches)

    def test_abort_keeps_sidecar_rows_without_replay_duplication(
        self, tmp_path, simple_schema, simple_table, rng
    ):
        batches = self._batches(simple_schema, count=3)
        store = PartitionStore(tmp_path / "abort-sidecar")
        incremental = IncrementalStore(store, simple_schema, RoundRobinLayout(3))
        for batch in batches[:2]:
            incremental.ingest(batch)
        target = RangeLayoutBuilder("x").build(simple_table, [], 5, rng)
        scheduler = ReorgScheduler(store, step_partitions=1)
        incremental.consolidate_async(target, scheduler)
        scheduler.tick()
        incremental.ingest(batches[2])  # lands in the sidecar
        total = sum(b.num_rows for b in batches)
        incremental.abort_consolidation(scheduler)
        # the sidecar partitions are ordinary appends of the old epoch now
        assert incremental.total_rows == total
        assert all(p.path.exists() for p in incremental.stored().partitions)
        # a fresh consolidation must not replay the abandoned queue on top
        incremental.consolidate_async(target, scheduler)
        scheduler.drain()
        assert incremental.total_rows == total

    def test_same_id_consolidation_with_sidecar_appends(
        self, tmp_path, simple_schema, simple_table, rng, queries
    ):
        # Same-id defragmentation while the stream keeps appending: the
        # evaluator's cached index reflects the sidecar-extended snapshot,
        # the final commit's delta the frozen one — revalidate degrades to
        # a clean re-register instead of crashing, and no row is lost.
        batches = self._batches(simple_schema, count=3)
        layout = RoundRobinLayout(3)
        store = PartitionStore(tmp_path / "same-id")
        evaluator = CostEvaluator(simple_table)
        incremental = IncrementalStore(store, simple_schema, layout, evaluator)
        for batch in batches[:2]:
            incremental.ingest(batch)
        scheduler = ReorgScheduler(store, evaluator=evaluator, step_partitions=1)
        incremental.consolidate_async(layout, scheduler)
        scheduler.tick()
        incremental.ingest(batches[2])
        scheduler.drain()
        assert incremental.total_rows == sum(b.num_rows for b in batches)
        assert incremental.layout is layout
        # the evaluator landed on the final (replayed) snapshot and prices it
        assert evaluator._metadata[layout.layout_id] is incremental.stored().metadata
        assert evaluator.cost_vector(layout, queries).shape == (len(queries),)


class IngestDuringConsolidationMachine(RuleBasedStateMachine):
    """Interleaved ingest-during-consolidation vs a serialized reference.

    Three stores advance together under a random interleaving of ingest,
    consolidation starts and movement ticks:

    * ``live`` takes the dual-epoch path — mid-flight batches route
      through the sidecar and are replayed at the commit;
    * ``reference`` serializes every flight: consolidate first, then the
      batches that arrived mid-flight — the semantics the dual-epoch path
      must reproduce exactly, checked at every commit (metadata and ids);
    * ``mirror`` never consolidates — it pins per-row query equality of
      the *visible* snapshot at every step: the old epoch plus the
      sidecar always serves every row ever ingested, never a row twice.

    Each flight's movement installments must also sum to exactly α
    (ledger equality, aborted flights refunded to zero).
    """

    ALPHA = 2.5
    QUERIES = (
        Query(predicate=between("x", 10.0, 40.0)),
        Query(predicate=between("x", 35.0, 90.0)),
    )

    def __init__(self):
        super().__init__()
        self._tmp = Path(tempfile.mkdtemp(prefix="dual-epoch-stateful-"))
        self.schema = Schema(
            columns=(
                ColumnSpec("x", "numeric"),
                ColumnSpec("y", "numeric"),
            )
        )
        layout = RoundRobinLayout(3)
        self.live_store = PartitionStore(self._tmp / "live")
        self.ref_store = PartitionStore(self._tmp / "ref")
        self.mirror_store = PartitionStore(self._tmp / "mirror")
        self.live = IncrementalStore(self.live_store, self.schema, layout)
        self.reference = IncrementalStore(self.ref_store, self.schema, layout)
        self.mirror = IncrementalStore(self.mirror_store, self.schema, layout)
        self.live_executor = QueryExecutor(self.live_store)
        self.mirror_executor = QueryExecutor(self.mirror_store)
        self.scheduler = ReorgScheduler(
            self.live_store, alpha=self.ALPHA, step_partitions=1
        )
        self.deferred: list = []
        self.flight_charges: list[float] = []
        self.target = None

    def teardown(self):
        shutil.rmtree(self._tmp, ignore_errors=True)

    def _make_batch(self, seed: int, rows: int):
        from repro.storage import Table

        generator = np.random.default_rng(seed)
        return Table(
            self.schema,
            {
                "x": generator.uniform(0.0, 100.0, size=rows),
                "y": generator.uniform(0.0, 1.0, size=rows),
            },
        )

    @rule(seed=st.integers(0, 10**6), rows=st.integers(20, 60))
    def ingest(self, seed, rows):
        batch = self._make_batch(seed, rows)
        in_flight = self.live.consolidating
        self.live.ingest(batch)
        self.mirror.ingest(batch)
        if in_flight:
            self.deferred.append(batch)  # the reference sees it post-commit
        else:
            self.reference.ingest(batch)

    @precondition(lambda self: not self.live.consolidating and self.live.num_partitions > 0)
    @rule(k=st.sampled_from([2, 4, 5]))
    def start_consolidation(self, k):
        self.target = RoundRobinLayout(k)
        self.live.consolidate_async(self.target, self.scheduler)
        self.flight_charges = []

    @precondition(lambda self: self.live.consolidating)
    @rule()
    def tick(self):
        scheduled = self.scheduler.tick()
        self.flight_charges.append(scheduled.movement_charge)
        if scheduled.completed:
            # ledger equality: the flight charged exactly α over its steps
            assert math.fsum(self.flight_charges) == pytest.approx(
                self.ALPHA, abs=1e-9
            )
            # serialize the reference: consolidate, then the deferred stream
            self.reference.consolidate(self.target)
            for batch in self.deferred:
                self.reference.ingest(batch)
            self.deferred = []
            # commit equality: dual-epoch == consolidate-then-ingest
            assert self.live.stored().metadata == self.reference.stored().metadata
            assert self.live._next_partition_id == self.reference._next_partition_id
            assert self.live.batches_ingested == self.reference.batches_ingested

    @precondition(lambda self: self.live.consolidating)
    @rule()
    def abort_flight(self):
        refund = self.scheduler.abort()
        assert refund == pytest.approx(math.fsum(self.flight_charges), abs=1e-9)
        # the sidecar rows stay as ordinary appends; re-sync the reference
        # (which never saw a consolidation) with the abandoned deferrals
        for batch in self.deferred:
            self.reference.ingest(batch)
        self.deferred = []
        self.flight_charges = []

    @invariant()
    def visible_rows_never_pause(self):
        # every row ever ingested is queryable right now, exactly once
        assert self.live.total_rows == self.mirror.total_rows
        live_stored = self.live.stored()
        mirror_stored = self.mirror.stored()
        for query in self.QUERIES:
            ours = self.live_executor.execute(live_stored, query)
            theirs = self.mirror_executor.execute(mirror_stored, query)
            assert ours.rows_matched == theirs.rows_matched


IngestDuringConsolidationMachine.TestCase.settings = settings(
    max_examples=12, stateful_step_count=30, deadline=None
)
TestIngestDuringConsolidationStateful = IngestDuringConsolidationMachine.TestCase
