"""Tests for the multi-copy variant (Appendix D analogue)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MultiCopyUMTS


def make(states=("a", "b", "c"), alpha=2.0, budget=2, seed=0, **kwargs):
    return MultiCopyUMTS(states, alpha, budget, np.random.default_rng(seed), **kwargs)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            make(states=())
        with pytest.raises(ValueError):
            make(budget=0)
        with pytest.raises(ValueError):
            make(alpha=0)

    def test_initial_states_respected(self):
        algorithm = make(initial_states=("a", "b"))
        assert set(algorithm.held) == {"a", "b"}

    def test_initial_states_over_budget(self):
        with pytest.raises(ValueError, match="budget"):
            make(budget=1, initial_states=("a", "b"))

    def test_unknown_initial_states(self):
        with pytest.raises(ValueError, match="not in state set"):
            make(initial_states=("zz",))


class TestServicing:
    def test_serves_on_cheapest_held(self):
        algorithm = make(initial_states=("a", "b"))
        decision = algorithm.observe({"a": 0.9, "b": 0.2, "c": 0.0})
        assert decision.serviced_in == "b"  # c is not held
        assert decision.service_cost == pytest.approx(0.2)

    def test_missing_costs_rejected(self):
        algorithm = make()
        with pytest.raises(KeyError):
            algorithm.observe({"a": 0.1})

    def test_budget_never_exceeded(self):
        algorithm = make(budget=2, initial_states=("a",))
        rng = np.random.default_rng(5)
        for _ in range(200):
            algorithm.observe({s: float(rng.uniform(0, 1)) for s in "abc"})
            assert len(algorithm.held) <= 2

    def test_materialization_costs_alpha(self):
        algorithm = make(states=("a", "b"), budget=1, initial_states=("a",), alpha=3.0)
        decision = None
        for _ in range(10):
            decision = algorithm.observe({"a": 1.0, "b": 0.0})
            if decision.materialized:
                break
        assert decision.materialized == "b"
        assert decision.movement_cost == 3.0
        assert decision.evicted == "a"

    def test_eviction_only_when_budget_full(self):
        algorithm = make(states=("a", "b"), budget=2, initial_states=("a",), alpha=2.0)
        for _ in range(10):
            decision = algorithm.observe({"a": 1.0, "b": 0.0})
            if decision.materialized:
                assert decision.evicted is None
                assert set(algorithm.held) == {"a", "b"}
                return
        raise AssertionError("never materialized")

    def test_phase_reset_when_all_full(self):
        algorithm = make(states=("a", "b"), budget=2, initial_states=("a", "b"), alpha=1.0)
        decision = algorithm.observe({"a": 1.0, "b": 1.0})
        assert decision.phase_reset
        assert algorithm.phase_index == 2

    def test_add_state_deferred(self):
        algorithm = make()
        algorithm.add_state("d")
        assert "d" in algorithm.states
        assert "d" not in algorithm.active


class TestBudgetAdvantage:
    def test_two_copies_beat_one_on_alternating_workload(self):
        """Holding both layouts avoids ping-pong reorganizations entirely."""

        def run(budget, seed):
            algorithm = make(
                states=("a", "b"), budget=budget, initial_states=("a",),
                alpha=5.0, seed=seed,
            )
            total = 0.0
            for t in range(400):
                if (t // 20) % 2 == 0:
                    costs = {"a": 0.05, "b": 0.6}
                else:
                    costs = {"a": 0.6, "b": 0.05}
                total += algorithm.observe(costs).total_cost
            return total

        single = np.mean([run(1, seed) for seed in range(10)])
        double = np.mean([run(2, seed) for seed in range(10)])
        assert double < single
