"""Tests for the exact offline UMTS solver (the OPT in competitive ratios)."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import solve_offline


def brute_force(costs: np.ndarray, alpha: float, initial_state=None) -> float:
    """Exhaustive enumeration over all state schedules (tiny instances)."""
    num_tasks, num_states = costs.shape
    best = np.inf
    for schedule in itertools.product(range(num_states), repeat=num_tasks):
        total = 0.0
        if initial_state is not None and schedule[0] != initial_state:
            total += alpha
        total += costs[0][schedule[0]]
        for t in range(1, num_tasks):
            if schedule[t] != schedule[t - 1]:
                total += alpha
            total += costs[t][schedule[t]]
        best = min(best, total)
    return best


class TestBasics:
    def test_empty_instance(self):
        solution = solve_offline(np.empty((0, 3)), alpha=2.0)
        assert solution.total_cost == 0.0
        assert solution.schedule == ()

    def test_single_task_picks_cheapest(self):
        solution = solve_offline(np.array([[0.5, 0.2, 0.9]]), alpha=2.0)
        assert solution.schedule == (1,)
        assert solution.total_cost == pytest.approx(0.2)

    def test_initial_state_penalty(self):
        solution = solve_offline(
            np.array([[0.5, 0.0]]), alpha=2.0, initial_state=0
        )
        # Moving to state 1 costs 2.0 + 0.0 > staying at 0.5.
        assert solution.schedule == (0,)

    def test_initial_state_worth_leaving(self):
        costs = np.array([[1.0, 0.0]] * 10)
        solution = solve_offline(costs, alpha=2.0, initial_state=0)
        assert solution.schedule[-1] == 1
        assert solution.total_cost == pytest.approx(2.0)

    def test_invalid_shapes(self):
        with pytest.raises(ValueError):
            solve_offline(np.zeros(5), alpha=1.0)
        with pytest.raises(ValueError):
            solve_offline(np.zeros((3, 2)), alpha=1.0, availability=np.ones((2, 2), bool))
        with pytest.raises(ValueError):
            solve_offline(np.zeros((3, 2)), alpha=1.0, initial_state=5)

    def test_switching_when_worth_it(self):
        # Phase 1 favors state 0, phase 2 favors state 1, switching cost small.
        costs = np.array([[0.0, 1.0]] * 5 + [[1.0, 0.0]] * 5)
        solution = solve_offline(costs, alpha=1.5)
        assert solution.schedule == (0,) * 5 + (1,) * 5
        assert solution.num_switches == 1
        assert solution.total_cost == pytest.approx(1.5)

    def test_not_switching_when_too_expensive(self):
        costs = np.array([[0.0, 1.0]] * 5 + [[1.0, 0.0]] * 5)
        solution = solve_offline(costs, alpha=10.0)
        assert solution.num_switches == 0
        assert solution.total_cost == pytest.approx(5.0)

    def test_cost_decomposition(self):
        costs = np.array([[0.0, 1.0]] * 3 + [[1.0, 0.0]] * 3)
        solution = solve_offline(costs, alpha=1.0)
        assert solution.total_cost == pytest.approx(
            solution.service_cost + solution.movement_cost
        )
        assert solution.movement_cost == pytest.approx(solution.num_switches * 1.0)


class TestAvailability:
    def test_unavailable_state_never_used(self):
        costs = np.zeros((4, 2))
        availability = np.array([[True, False]] * 4)
        solution = solve_offline(costs, alpha=1.0, availability=availability)
        assert solution.schedule == (0, 0, 0, 0)

    def test_forced_migration(self):
        # State 0 disappears halfway; OPT must pay one switch.
        costs = np.zeros((4, 2))
        availability = np.array([[True, True]] * 2 + [[False, True]] * 2)
        solution = solve_offline(costs, alpha=1.0, availability=availability)
        assert solution.schedule[2:] == (1, 1)

    def test_every_row_needs_a_state(self):
        with pytest.raises(ValueError, match="at least one"):
            solve_offline(
                np.zeros((2, 2)), alpha=1.0, availability=np.zeros((2, 2), bool)
            )

    def test_state_can_return_after_absence(self):
        costs = np.array(
            [[0.0, 1.0], [1.0, 0.1], [0.0, 1.0]]
        )
        availability = np.array([[True, True], [False, True], [True, True]])
        solution = solve_offline(costs, alpha=0.05, availability=availability)
        assert solution.schedule == (0, 1, 0)


class TestAgainstBruteForce:
    @given(
        seed=st.integers(0, 10_000),
        num_tasks=st.integers(1, 6),
        num_states=st.integers(1, 4),
        alpha=st.floats(0.1, 5.0),
        with_initial=st.booleans(),
    )
    @settings(max_examples=150, deadline=None)
    def test_matches_exhaustive_optimum(
        self, seed, num_tasks, num_states, alpha, with_initial
    ):
        rng = np.random.default_rng(seed)
        costs = rng.uniform(0, 1, size=(num_tasks, num_states))
        initial = 0 if with_initial else None
        solution = solve_offline(costs, alpha, initial_state=initial)
        expected = brute_force(costs, alpha, initial_state=initial)
        assert solution.total_cost == pytest.approx(expected)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_schedule_witnesses_reported_cost(self, seed):
        rng = np.random.default_rng(seed)
        costs = rng.uniform(0, 1, size=(8, 3))
        solution = solve_offline(costs, alpha=1.0)
        total = costs[0][solution.schedule[0]]
        for t in range(1, 8):
            if solution.schedule[t] != solution.schedule[t - 1]:
                total += 1.0
            total += costs[t][solution.schedule[t]]
        assert total == pytest.approx(solution.total_cost)
