"""Integration tests for the OREO controller."""

from __future__ import annotations

import pytest

from repro.core import OREO, CostEvaluator, OreoConfig
from repro.layouts import QdTreeBuilder, RangeLayoutBuilder
from repro.queries import Query, between
from repro.workloads import generate_stream
from repro.workloads.templates import QueryTemplate


def drifting_templates():
    """Two disjoint x-range regimes: layouts tuned to one fail on the other."""

    def low_range(rng):
        start = float(rng.uniform(0, 30))
        return between("x", start, start + 3.0)

    def high_range(rng):
        start = float(rng.uniform(60, 95))
        return between("x", start, start + 3.0)

    return (
        QueryTemplate("low", low_range),
        QueryTemplate("high", high_range),
    )


@pytest.fixture
def oreo_setup(simple_table, rng):
    config = OreoConfig(
        alpha=10.0,
        window_size=25,
        generation_interval=25,
        admission_sample_size=16,
        num_partitions=8,
        data_sample_fraction=0.2,
    )
    initial = RangeLayoutBuilder("y").build(simple_table, [], 8, rng)
    evaluator = CostEvaluator(simple_table)
    oreo = OREO(simple_table, QdTreeBuilder(), initial, config, rng, evaluator)
    return oreo, initial


class TestProcess:
    def test_step_result_fields(self, oreo_setup, rng):
        oreo, initial = oreo_setup
        query = Query(predicate=between("x", 0.0, 10.0))
        result = oreo.process(query)
        assert result.effective_layout == initial.layout_id
        assert 0.0 <= result.service_cost <= 1.0
        assert result.movement_cost == 0.0
        assert not result.switched

    def test_ledger_tracks_every_query(self, oreo_setup, rng):
        oreo, _ = oreo_setup
        stream = generate_stream(drifting_templates(), 100, 4, rng)
        oreo.run(stream)
        assert oreo.ledger.num_queries == 100
        assert oreo.state_space_samples == 100

    def test_state_space_accounting_is_constant_memory(self, oreo_setup, rng):
        """Regression: the Figure 6 metric must not grow a per-query list."""
        oreo, _ = oreo_setup
        stream = generate_stream(drifting_templates(), 120, 4, rng)
        oreo.run(stream)
        assert not hasattr(oreo, "state_space_sizes")
        assert oreo.state_space_samples == 120
        assert oreo.average_state_space_size() >= 1.0
        assert oreo.average_state_space_size() == oreo._state_space_total / 120

    def test_total_cost_decomposition(self, oreo_setup, rng):
        oreo, _ = oreo_setup
        stream = generate_stream(drifting_templates(), 150, 4, rng)
        summary = oreo.run(stream)
        assert summary.total_cost == pytest.approx(
            summary.total_query_cost + summary.total_reorg_cost
        )
        assert summary.total_reorg_cost == pytest.approx(
            oreo.config.alpha * summary.num_switches
            + oreo.config.alpha * oreo.reorganizer.forced_switches
        )

    def test_state_space_grows_under_drift(self, oreo_setup, rng):
        oreo, _ = oreo_setup
        stream = generate_stream(drifting_templates(), 200, 6, rng)
        oreo.run(stream)
        assert oreo.manager.num_states >= 2
        assert oreo.average_state_space_size() >= 1.0

    def test_switches_to_admitted_layouts(self, oreo_setup, rng):
        oreo, initial = oreo_setup
        stream = generate_stream(drifting_templates(), 400, 6, rng)
        summary = oreo.run(stream)
        assert summary.num_switches >= 1
        assert oreo.current_layout.layout_id != initial.layout_id or True
        # Whatever the final layout, it must be resolvable in the registry.
        assert oreo.current_layout is oreo.manager.get(oreo.reorganizer.effective)

    def test_effective_layout_always_resolvable(self, oreo_setup, rng):
        oreo, _ = oreo_setup
        stream = generate_stream(drifting_templates(), 300, 6, rng)
        for query in stream:
            result = oreo.process(query)
            oreo.manager.get(result.effective_layout)  # must not raise

    def test_smax_at_least_final_state_count(self, oreo_setup, rng):
        oreo, _ = oreo_setup
        stream = generate_stream(drifting_templates(), 200, 4, rng)
        oreo.run(stream)
        assert oreo.reorganizer.algorithm.smax >= oreo.manager.num_states


class TestReplayPolicy:
    def test_replay_add_policy_runs(self, simple_table, rng):
        config = OreoConfig(
            alpha=10.0,
            window_size=25,
            generation_interval=25,
            num_partitions=8,
            data_sample_fraction=0.2,
            add_policy="replay",
        )
        initial = RangeLayoutBuilder("y").build(simple_table, [], 8, rng)
        oreo = OREO(simple_table, QdTreeBuilder(), initial, config, rng)
        stream = generate_stream(drifting_templates(), 150, 4, rng)
        summary = oreo.run(stream)
        assert summary.num_queries == 150

    def test_median_add_policy_runs(self, simple_table, rng):
        config = OreoConfig(
            alpha=10.0,
            window_size=25,
            generation_interval=25,
            num_partitions=8,
            data_sample_fraction=0.2,
            add_policy="median",
        )
        initial = RangeLayoutBuilder("y").build(simple_table, [], 8, rng)
        oreo = OREO(simple_table, QdTreeBuilder(), initial, config, rng)
        stream = generate_stream(drifting_templates(), 150, 4, rng)
        assert oreo.run(stream).num_queries == 150


class TestMaxStates:
    def test_cap_keeps_state_space_bounded(self, simple_table, rng):
        config = OreoConfig(
            alpha=10.0,
            window_size=20,
            generation_interval=20,
            num_partitions=8,
            data_sample_fraction=0.2,
            epsilon=0.0,  # admit aggressively to stress the cap
            max_states=3,
        )
        initial = RangeLayoutBuilder("y").build(simple_table, [], 8, rng)
        oreo = OREO(simple_table, QdTreeBuilder(), initial, config, rng)
        stream = generate_stream(drifting_templates(), 300, 8, rng)
        for query in stream:
            oreo.process(query)
            assert oreo.manager.num_states <= 3
