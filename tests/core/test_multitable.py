"""Tests for the multi-table OREO composition (§VIII)."""

from __future__ import annotations

import pytest

from repro.core import (
    OREO,
    MultiTableOREO,
    MultiTableQuery,
    OreoConfig,
    split_conjunction,
)
from repro.layouts import QdTreeBuilder, RangeLayoutBuilder
from repro.queries import And, Comparison, between, eq
from repro.storage import ColumnSpec, Schema, Table

OWNERS = {"f_a": "facts", "f_b": "facts", "d_x": "dims", "d_y": "dims"}


def make_tables(rng):
    facts = Table(
        Schema(columns=(ColumnSpec("f_a", "numeric"), ColumnSpec("f_b", "numeric"))),
        {"f_a": rng.uniform(0, 100, 2000), "f_b": rng.uniform(0, 100, 2000)},
    )
    dims = Table(
        Schema(columns=(ColumnSpec("d_x", "numeric"), ColumnSpec("d_y", "numeric"))),
        {"d_x": rng.uniform(0, 100, 2000), "d_y": rng.uniform(0, 100, 2000)},
    )
    return {"facts": facts, "dims": dims}


def make_multitable(rng):
    tables = make_tables(rng)
    config = OreoConfig(
        alpha=10.0, window_size=20, generation_interval=20,
        num_partitions=6, data_sample_fraction=0.25,
    )
    instances = {}
    for name, table in tables.items():
        sort_column = table.schema.names()[0]
        initial = RangeLayoutBuilder(sort_column).build(
            table.sample(0.25, rng), [], 6, rng
        )
        instances[name] = OREO(table, QdTreeBuilder(), initial, config, rng)
    return MultiTableOREO(instances)


class TestSplitConjunction:
    def test_per_table_parts(self):
        predicate = And((between("f_a", 0, 10), eq("d_x", 5.0)))
        parts = split_conjunction(predicate, OWNERS)
        assert set(parts) == {"facts", "dims"}
        assert parts["facts"] == between("f_a", 0, 10)
        assert parts["dims"] == eq("d_x", 5.0)

    def test_multiple_conjuncts_same_table(self):
        predicate = And((between("f_a", 0, 10), between("f_b", 5, 6)))
        parts = split_conjunction(predicate, OWNERS)
        assert set(parts) == {"facts"}
        assert isinstance(parts["facts"], And)

    def test_nested_conjunctions_flattened(self):
        predicate = And((And((between("f_a", 0, 1), eq("d_y", 2.0)),), eq("d_x", 3.0)))
        parts = split_conjunction(predicate, OWNERS)
        assert set(parts) == {"facts", "dims"}

    def test_unknown_column_rejected(self):
        with pytest.raises(KeyError, match="no owning table"):
            split_conjunction(eq("mystery", 1), OWNERS)

    def test_cross_table_conjunct_dropped(self):
        """A join condition (columns from two tables) prunes nothing."""
        join_like = Comparison("f_a", "==", 0) | Comparison("d_x", "==", 0)
        parts = split_conjunction(And((join_like, eq("f_b", 1.0))), OWNERS)
        assert set(parts) == {"facts"}


class TestMultiTableQuery:
    def test_requires_parts(self):
        with pytest.raises(ValueError):
            MultiTableQuery(parts={})

    def test_part_projection(self):
        query = MultiTableQuery(
            parts={"facts": between("f_a", 0, 1)}, template="q1", timestamp=3.0
        )
        projected = query.part_as_query("facts")
        assert projected.template == "q1"
        assert projected.timestamp == 3.0
        assert projected.predicate == between("f_a", 0, 1)


class TestMultiTableOREO:
    def test_requires_instances(self):
        with pytest.raises(ValueError):
            MultiTableOREO({})

    def test_routes_to_correct_instance(self, rng):
        system = make_multitable(rng)
        query = MultiTableQuery(parts={"facts": between("f_a", 0, 10)})
        results = system.process(query)
        assert set(results) == {"facts"}
        assert system.instances["facts"].ledger.num_queries == 1
        assert system.instances["dims"].ledger.num_queries == 0

    def test_unknown_table_rejected(self, rng):
        system = make_multitable(rng)
        with pytest.raises(KeyError, match="no OREO instance"):
            system.process(MultiTableQuery(parts={"ghost": between("f_a", 0, 1)}))

    def test_summary_is_additive(self, rng):
        system = make_multitable(rng)
        stream = [
            MultiTableQuery(
                parts={
                    "facts": between("f_a", float(i % 50), float(i % 50) + 5),
                    "dims": between("d_x", float(i % 50), float(i % 50) + 5),
                }
            )
            for i in range(60)
        ]
        summary = system.run(stream)
        per_table = system.per_table_summaries()
        assert summary.num_queries == sum(s.num_queries for s in per_table.values())
        assert summary.total_cost == pytest.approx(
            sum(s.total_cost for s in per_table.values())
        )

    def test_untouched_table_not_charged(self, rng):
        system = make_multitable(rng)
        stream = [
            MultiTableQuery(parts={"facts": between("f_a", 0, 10)}) for _ in range(30)
        ]
        system.run(stream)
        assert system.instances["dims"].ledger.total_cost == 0.0

    def test_tables_reorganize_independently(self, rng):
        """Drift only on facts: the dims instance must not switch."""
        system = make_multitable(rng)
        stream = []
        for i in range(400):
            column = "f_a" if i < 200 else "f_b"
            start = float(rng.uniform(0, 90))
            stream.append(
                MultiTableQuery(
                    parts={
                        "facts": between(column, start, start + 5.0),
                        "dims": between("d_x", 40.0, 45.0),
                    }
                )
            )
        system.run(stream)
        facts_switches = system.instances["facts"].ledger.num_switches
        dims_switches = system.instances["dims"].ledger.num_switches
        assert facts_switches >= 1
        assert dims_switches <= facts_switches
