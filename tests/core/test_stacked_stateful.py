"""Stateful equivalence: the stacked cost engine under state churn.

A hypothesis state machine drives interleaved ``add_state`` /
``remove_state`` / reorganization / ``observe`` sequences through a
shared :class:`CostEvaluator` and a :class:`DynamicUMTS` instance, and
after every step asserts that

* the stacked admission prices (``cost_matrix`` over the live state
  space) are bit-for-bit what a *from-scratch* evaluator computes;
* every cached cost float equals the scalar-oracle fraction recomputed
  from the layout's current metadata — i.e. reorganizations revalidated
  the cache surgically without corrupting a single entry;
* the D-UMTS bookkeeping invariants hold (``counters ⊆ states``, state
  set in sync with the evaluator's view).

This extends the reorg-machine pattern of
``tests/layouts/test_zonemaps_incremental.py`` from a single index to the
whole evaluator + decision-loop stack.
"""

from __future__ import annotations

import numpy as np
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule
from hypothesis import strategies as st

from repro.core import CostEvaluator, DynamicUMTS
from repro.layouts import compute_reorg_delta_from_assignments
from repro.layouts.base import DataLayout
from repro.layouts.metadata import build_layout_metadata
from repro.queries import Query, between, eq, ge, isin, lt, ne
from repro.queries.predicates import And, Not, Or
from repro.storage import ColumnSpec, Schema, Table

_SCHEMA = Schema(
    columns=(
        ColumnSpec("a", "numeric"),
        ColumnSpec("b", "numeric"),
        ColumnSpec("c", "categorical", tuple(f"v{i}" for i in range(8))),
    )
)

_QUERIES = [
    Query(predicate=p)
    for p in (
        between("a", -10, 10),
        lt("b", 20.0),
        ge("a", 0),
        eq("c", 3),
        ne("c", 1),
        isin("c", [0, 5, 7]),
        And((between("b", 0.0, 30.0), eq("c", 2))),
        Or((lt("a", -15), ge("a", 15))),
        Not(between("a", -5, 5)),
    )
]

_NUM_PARTITIONS = 8


class _StubLayout(DataLayout):
    """A layout whose row assignment the test mutates across reorgs."""

    def __init__(self, layout_id: str, assignment: np.ndarray):
        super().__init__(layout_id, _NUM_PARTITIONS)
        self.assignment = assignment

    def assign(self, table: Table) -> np.ndarray:
        return self.assignment

    def describe(self) -> str:
        return "stub"


def make_table(seed: int, n: int = 300) -> Table:
    rng = np.random.default_rng(seed)
    return Table(
        _SCHEMA,
        {
            "a": rng.integers(-20, 21, size=n).astype(np.int64),
            "b": rng.uniform(-5.0, 45.0, size=n),
            "c": rng.integers(0, 8, size=n).astype(np.int32),
        },
    )


class StackedEvaluatorMachine(RuleBasedStateMachine):
    """Random add/remove/reorg/observe streams; rebuilt-from-scratch check."""

    @initialize(seed=st.integers(0, 1_000))
    def setup(self, seed):
        self.rng = np.random.default_rng(seed)
        self.table = make_table(seed)
        self.evaluator = CostEvaluator(self.table)
        self.layouts: dict[str, _StubLayout] = {}
        self._minted = 0
        first = self._mint_layout()
        # Small alpha: transitions, counter saturation and phase resets all
        # happen within a short rule sequence.
        self.dumts = DynamicUMTS(
            [first], 1.5, np.random.default_rng(seed + 1), initial_state=first
        )

    # ----------------------------------------------------------------- helpers
    def _mint_layout(self) -> str:
        layout_id = f"L{self._minted}"
        self._minted += 1
        assignment = self.rng.integers(
            0, _NUM_PARTITIONS, size=self.table.num_rows
        )
        self.layouts[layout_id] = _StubLayout(layout_id, assignment)
        return layout_id

    def _live(self) -> list[_StubLayout]:
        return [self.layouts[layout_id] for layout_id in sorted(self.layouts)]

    # ------------------------------------------------------------------- rules
    @rule(position=st.integers(0, 10_000))
    def observe(self, position):
        """One D-UMTS step priced through the stacked cost engine."""
        query = _QUERIES[position % len(_QUERIES)]
        costs = self.evaluator.costs_for_query(self._live(), query)
        decision = self.dumts.observe(costs)
        assert 0.0 <= decision.service_cost <= 1.0
        assert self.dumts.current in self.layouts

    @rule()
    def add_state(self):
        layout_id = self._mint_layout()
        self.dumts.add_state(layout_id)

    @rule(pick=st.integers(0, 10_000))
    def remove_state(self, pick):
        if len(self.layouts) <= 1:
            return
        victims = sorted(self.layouts)
        layout_id = victims[pick % len(victims)]
        self.dumts.remove_state(layout_id)
        del self.layouts[layout_id]
        self.evaluator.forget(layout_id)

    @rule(pick=st.integers(0, 10_000), seed=st.integers(0, 10_000))
    def reorg(self, pick, seed):
        """Shuffle rows among a few partitions; revalidate the evaluator."""
        ids = sorted(self.layouts)
        layout = self.layouts[ids[pick % len(ids)]]
        old_metadata = self.evaluator.metadata(layout)
        touched = list(range(seed % _NUM_PARTITIONS + 1))
        new_assignment = layout.assignment.copy()
        member = np.isin(layout.assignment, touched)
        if member.any():
            new_assignment[member] = np.random.default_rng(seed).choice(
                touched, size=int(member.sum())
            )
        new_metadata = build_layout_metadata(self.table, new_assignment)
        delta = compute_reorg_delta_from_assignments(
            old_metadata, new_metadata, layout.assignment, new_assignment
        )
        self.evaluator.revalidate(layout.layout_id, delta)
        layout.assignment = new_assignment

    # -------------------------------------------------------------- invariants
    @invariant()
    def stacked_prices_equal_fresh_rebuild(self):
        if not hasattr(self, "evaluator"):
            return
        layouts = self._live()
        stacked = self.evaluator.cost_matrix(layouts, _QUERIES)
        fresh = CostEvaluator(self.table).cost_matrix(layouts, _QUERIES)
        np.testing.assert_array_equal(stacked, fresh)
        vector = self.evaluator.costs_for_query(layouts, _QUERIES[0])
        for row, layout in enumerate(layouts):
            assert vector[layout.layout_id] == fresh[row, 0]

    @invariant()
    def cache_contents_equal_scalar_oracle(self):
        if not hasattr(self, "evaluator"):
            return
        for layout in self._live():
            metadata = self.evaluator.metadata(layout)
            cached = self.evaluator._query_costs.get(layout.layout_id, {})
            for query in _QUERIES:
                key = query.cache_key()
                if key in cached:
                    assert cached[key] == metadata.accessed_fraction(query.predicate)

    @invariant()
    def bookkeeping_in_sync(self):
        if not hasattr(self, "dumts"):
            return
        assert set(self.dumts.counters) <= set(self.dumts.states)
        assert set(self.dumts.state_names) == set(self.layouts)
        assert self.dumts.active <= set(self.dumts.states)


TestStackedEvaluatorMachine = StackedEvaluatorMachine.TestCase
TestStackedEvaluatorMachine.settings = settings(
    max_examples=20, stateful_step_count=10, deadline=None
)
