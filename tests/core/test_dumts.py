"""Tests for D-UMTS (Algorithm 4): dynamic state addition and removal."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BLSAlgorithm, DynamicUMTS


def make(states=("a", "b", "c"), alpha=2.0, seed=0, **kwargs):
    return DynamicUMTS(states, alpha, np.random.default_rng(seed), **kwargs)


def uniform_costs(algorithm, value=0.5):
    return {s: value for s in algorithm.state_names}


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            make(states=())
        with pytest.raises(ValueError):
            make(alpha=0)
        with pytest.raises(ValueError):
            make(add_policy="nonsense")
        with pytest.raises(ValueError):
            make(initial_state="zz")

    def test_smax_starts_at_initial_size(self):
        assert make().smax == 3


class TestAddState:
    def test_defer_policy_excludes_until_next_phase(self):
        algorithm = make(initial_state="a", alpha=2.0, add_policy="defer")
        algorithm.add_state("d")
        assert "d" in algorithm.state_names
        assert "d" not in algorithm.active
        # Fill everything to force a reset; d joins the new phase.
        algorithm.observe({"a": 1.0, "b": 1.0, "c": 1.0, "d": 1.0})
        algorithm.observe({"a": 1.0, "b": 1.0, "c": 1.0, "d": 1.0})
        assert "d" in algorithm.active

    def test_defer_still_requires_cost_entries(self):
        algorithm = make(initial_state="a", add_policy="defer")
        algorithm.add_state("d")
        with pytest.raises(KeyError):
            algorithm.observe({"a": 0.1, "b": 0.1, "c": 0.1})

    def test_median_policy_activates_immediately(self):
        algorithm = make(initial_state="a", alpha=5.0, add_policy="median")
        algorithm.observe({"a": 0.2, "b": 0.4, "c": 0.6})
        algorithm.add_state("d")
        assert "d" in algorithm.active
        assert algorithm.counters["d"] == pytest.approx(0.4)

    def test_zero_policy_starts_at_zero(self):
        algorithm = make(initial_state="a", alpha=5.0, add_policy="zero")
        algorithm.observe({"a": 0.9, "b": 0.9, "c": 0.9})
        algorithm.add_state("d")
        assert algorithm.counters["d"] == 0.0

    def test_replay_policy_sums_costs(self):
        algorithm = make(initial_state="a", alpha=5.0, add_policy="replay")
        algorithm.add_state("d", replay_costs=[0.5, 0.25])
        assert algorithm.counters["d"] == pytest.approx(0.75)

    def test_replay_requires_costs(self):
        algorithm = make(add_policy="replay")
        with pytest.raises(ValueError, match="replay_costs"):
            algorithm.add_state("d")

    def test_replay_full_counter_stays_inactive(self):
        algorithm = make(initial_state="a", alpha=2.0, add_policy="replay")
        algorithm.add_state("d", replay_costs=[1.5, 1.0])
        assert "d" not in algorithm.active

    def test_duplicate_add_is_noop(self):
        algorithm = make()
        algorithm.add_state("a")
        assert algorithm.num_states == 3

    def test_smax_tracks_peak(self):
        algorithm = make()
        algorithm.add_state("d")
        algorithm.add_state("e")
        algorithm.remove_state("d")
        algorithm.remove_state("e")
        assert algorithm.num_states == 3
        assert algorithm.smax == 5

    def test_change_log(self):
        algorithm = make()
        algorithm.add_state("d")
        algorithm.remove_state("d")
        kinds = [(c.kind, c.state) for c in algorithm.changes]
        assert kinds == [("add", "d"), ("remove", "d")]


class TestRemoveState:
    def test_removed_state_unavailable(self):
        algorithm = make(initial_state="a")
        algorithm.remove_state("b")
        assert "b" not in algorithm.state_names
        assert "b" not in algorithm.active

    def test_remove_unknown_state(self):
        algorithm = make()
        with pytest.raises(KeyError):
            algorithm.remove_state("zz")

    def test_cannot_remove_last_state(self):
        algorithm = make(states=("a",), initial_state="a")
        with pytest.raises(ValueError, match="last remaining"):
            algorithm.remove_state("a")

    def test_remove_current_forces_switch(self):
        algorithm = make(initial_state="a")
        new_state = algorithm.remove_state("a")
        assert new_state in {"b", "c"}
        assert algorithm.current == new_state

    def test_remove_non_current_returns_none(self):
        algorithm = make(initial_state="a")
        assert algorithm.remove_state("b") is None
        assert algorithm.current == "a"

    def test_remove_emptying_active_resets_phase(self):
        algorithm = make(states=("a", "b"), initial_state="a", alpha=1.0)
        # Fill b's counter, then remove a (the only remaining active state):
        algorithm.observe({"a": 0.5, "b": 1.0})
        phase_before = algorithm.phase_index
        algorithm.remove_state("a")
        assert algorithm.phase_index == phase_before + 1
        assert algorithm.current == "b"
        assert algorithm.active == {"b"}

    def test_costs_not_required_for_removed_states(self):
        algorithm = make(initial_state="a")
        algorithm.remove_state("c")
        decision = algorithm.observe({"a": 0.1, "b": 0.1})
        assert decision.serviced_in == "a"

    def test_switch_never_targets_removed_state(self):
        for seed in range(10):
            algorithm = make(initial_state="a", alpha=1.0, seed=seed)
            algorithm.remove_state("b")
            decision = algorithm.observe({"a": 1.0, "c": 0.0})
            assert decision.switched_to == "c"

    def test_remove_leaves_no_stale_counter(self):
        """Regression: removal used to set counters[state] = alpha *after*
        deleting the state, resurrecting a counter for a dead state."""
        algorithm = make(initial_state="a")
        algorithm.observe({"a": 0.3, "b": 0.3, "c": 0.3})
        algorithm.remove_state("b")
        assert "b" not in algorithm.counters
        assert "b" not in algorithm.last_phase_weights
        assert set(algorithm.counters) <= set(algorithm.states)

    def test_counters_subset_of_states_across_operations(self):
        algorithm = make(initial_state="a", alpha=2.0)
        algorithm.observe({"a": 0.9, "b": 0.9, "c": 0.9})
        algorithm.add_state("d")
        algorithm.remove_state("b")
        algorithm.observe({"a": 0.9, "c": 0.9, "d": 0.9})  # may reset the phase
        algorithm.remove_state("d")
        algorithm.observe({"a": 0.5, "c": 0.5})
        assert set(algorithm.counters) <= set(algorithm.states)
        assert set(algorithm.last_phase_weights) <= set(algorithm.states)

    def test_removed_state_not_resurrected_by_phase_reset(self):
        """A state removed mid-phase must not reappear in the next phase's
        skip weights (its recorded costs are purged on removal)."""
        algorithm = make(states=("a", "b", "c"), initial_state="a", alpha=1.0)
        algorithm.observe({"a": 0.4, "b": 0.4, "c": 0.4})
        algorithm.remove_state("b")
        # Exhaust the surviving counters to force a phase reset.
        algorithm.observe({"a": 0.7, "c": 0.7})
        assert "b" not in algorithm.last_phase_weights
        assert set(algorithm.counters) == set(algorithm.states)


class TestDifferentialAgainstBLS:
    """Without state updates, Algorithm 4 must behave exactly like BLS."""

    @pytest.mark.parametrize("seed", range(5))
    def test_identical_trajectories(self, seed):
        stream_rng = np.random.default_rng(seed + 100)
        stream = [
            {s: float(stream_rng.uniform(0, 1)) for s in "abcd"} for _ in range(300)
        ]
        bls = BLSAlgorithm(
            "abcd", 3.0, np.random.default_rng(seed), initial_state="a",
            stay_on_reset=True,
        )
        dumts = DynamicUMTS(
            "abcd", 3.0, np.random.default_rng(seed), initial_state="a",
            stay_on_reset=True,
        )
        for costs in stream:
            decision_bls = bls.observe(costs)
            decision_dumts = dumts.observe(costs)
            assert decision_bls == decision_dumts
            assert bls.current == dumts.current


class TestCompetitiveBound:
    def test_bound_formula(self):
        algorithm = make()
        algorithm.add_state("d")
        expected = 2.0 * (1.0 + np.log(4))
        assert algorithm.competitive_bound() == pytest.approx(expected)

    def test_bound_uses_peak_size(self):
        algorithm = make()
        algorithm.add_state("d")
        algorithm.remove_state("d")
        assert algorithm.competitive_bound() == pytest.approx(2.0 * (1.0 + np.log(4)))
