"""Tests for the LAYOUT MANAGER: generation cadence, Algorithm 5, pruning."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CostEvaluator, LayoutManager, LayoutManagerConfig
from repro.layouts import QdTreeBuilder, RangeLayoutBuilder, RoundRobinLayout
from repro.queries import Query, between


def make_manager(table, rng, **overrides):
    defaults = dict(
        epsilon=0.08,
        window_size=20,
        generation_interval=20,
        admission_sample_size=16,
        num_partitions=8,
        data_sample_fraction=0.2,
    )
    defaults.update(overrides)
    config = LayoutManagerConfig(**defaults)
    evaluator = CostEvaluator(table)
    manager = LayoutManager(table, QdTreeBuilder(), evaluator, config, rng)
    return manager, evaluator


def x_query(rng):
    low = float(rng.uniform(0, 90))
    return Query(predicate=between("x", low, low + 5.0))


class TestConfigValidation:
    def test_epsilon_bounds(self):
        with pytest.raises(ValueError):
            LayoutManagerConfig(epsilon=-0.1)
        with pytest.raises(ValueError):
            LayoutManagerConfig(epsilon=1.1)

    def test_sampler_mode(self):
        with pytest.raises(ValueError):
            LayoutManagerConfig(sampler_mode="bogus")

    def test_max_states(self):
        with pytest.raises(ValueError):
            LayoutManagerConfig(max_states=1)


class TestRegistryAndGeneration:
    def test_register_and_get(self, simple_table, rng):
        manager, _ = make_manager(simple_table, rng)
        layout = RoundRobinLayout(4)
        manager.register(layout)
        assert manager.get(layout.layout_id) is layout
        assert manager.num_states == 1

    def test_no_generation_before_interval(self, simple_table, rng):
        manager, _ = make_manager(simple_table, rng)
        manager.register(RoundRobinLayout(4))
        for _ in range(19):
            events = manager.observe(x_query(rng))
            assert events.candidates_considered == 0

    def test_generation_at_interval(self, simple_table, rng):
        manager, _ = make_manager(simple_table, rng)
        manager.register(RoundRobinLayout(4))
        events = None
        for _ in range(20):
            events = manager.observe(x_query(rng))
        assert events.candidates_considered == 1

    def test_good_candidate_admitted(self, simple_table, rng):
        """A qd-tree tuned to x-range queries differs from round-robin."""
        manager, _ = make_manager(simple_table, rng)
        manager.register(RoundRobinLayout(8))
        admitted = []
        for _ in range(40):
            events = manager.observe(x_query(rng))
            admitted.extend(events.added)
        assert admitted
        assert manager.num_states >= 2

    def test_near_duplicate_rejected(self, simple_table, rng):
        manager, _ = make_manager(simple_table, rng)
        manager.register(RoundRobinLayout(8))
        total_rejected = 0
        for _ in range(100):
            events = manager.observe(x_query(rng))
            total_rejected += events.candidates_rejected
        # The same x-heavy workload keeps producing similar qd-trees; after
        # the first admission most candidates must be rejected as ε-close.
        assert total_rejected >= 2

    def test_sw_rs_mode_generates_two_candidates(self, simple_table, rng):
        manager, _ = make_manager(simple_table, rng, sampler_mode="sw+rs")
        manager.register(RoundRobinLayout(4))
        for _ in range(19):
            manager.observe(x_query(rng))
        events = manager.observe(x_query(rng))
        assert events.candidates_considered == 2


class TestAdmission:
    def test_admit_state_empty_sample_rejects(self, simple_table, rng):
        manager, _ = make_manager(simple_table, rng)
        assert not manager.admit_state(RoundRobinLayout(4))

    def test_first_state_admitted_when_registry_empty(self, simple_table, rng):
        manager, _ = make_manager(simple_table, rng)
        manager.admission_sample.add(x_query(rng))
        assert manager.admit_state(RoundRobinLayout(4))

    def test_identical_layout_rejected(self, simple_table, rng):
        manager, _ = make_manager(simple_table, rng)
        layout = RoundRobinLayout(4)
        manager.register(layout)
        manager.admission_sample.add(x_query(rng))
        clone = RoundRobinLayout(4)  # different id, identical cost vector
        assert not manager.admit_state(clone)

    def test_epsilon_zero_admits_any_difference(self, simple_table, rng):
        manager, evaluator = make_manager(simple_table, rng, epsilon=0.0)
        manager.register(RoundRobinLayout(8))
        for _ in range(10):
            manager.admission_sample.add(x_query(rng))
        candidate = RangeLayoutBuilder("x").build(simple_table, [], 8, rng)
        assert manager.admit_state(candidate)

    def test_epsilon_one_rejects_everything(self, simple_table, rng):
        manager, _ = make_manager(simple_table, rng, epsilon=1.0)
        manager.register(RoundRobinLayout(8))
        for _ in range(10):
            manager.admission_sample.add(x_query(rng))
        candidate = RangeLayoutBuilder("x").build(simple_table, [], 8, rng)
        assert not manager.admit_state(candidate)

    def test_distance_is_normalized_l1(self):
        a = np.array([0.0, 1.0, 0.5, 0.5])
        b = np.array([1.0, 0.0, 0.5, 0.5])
        assert LayoutManager._distance(a, b) == pytest.approx(0.5)

    def test_distance_empty_vectors_is_zero(self):
        """Regression: empty cost vectors used to raise ZeroDivisionError."""
        empty = np.array([], dtype=np.float64)
        assert LayoutManager._distance(empty, empty) == 0.0

    def test_admission_matches_pairwise_scalar_distances(self, simple_table, rng):
        """Batched admission must agree with the per-layout scalar distances."""
        manager, evaluator = make_manager(simple_table, rng, epsilon=0.08)
        manager.register(RoundRobinLayout(8))
        manager.register(RangeLayoutBuilder("y").build(simple_table, [], 8, rng))
        for _ in range(12):
            manager.admission_sample.add(x_query(rng))
        candidate = RangeLayoutBuilder("x").build(simple_table, [], 8, rng)
        sample = manager.admission_sample.snapshot()
        candidate_costs = evaluator.cost_vector(candidate, sample)
        scalar_min = min(
            LayoutManager._distance(
                candidate_costs, evaluator.cost_vector(existing, sample)
            )
            for existing in manager.layouts.values()
        )
        assert manager.admit_state(candidate) == (scalar_min > manager.config.epsilon)


class TestPruning:
    def test_max_states_cap_enforced(self, simple_table, rng):
        manager, _ = make_manager(
            simple_table, rng, max_states=2, epsilon=0.0, generation_interval=10,
            window_size=10,
        )
        initial = RoundRobinLayout(8)
        manager.register(initial)
        for _ in range(100):
            manager.observe(x_query(rng), protected=[initial.layout_id])
            assert manager.num_states <= 2

    def test_protected_layouts_survive_cap(self, simple_table, rng):
        manager, _ = make_manager(
            simple_table, rng, max_states=2, epsilon=0.0, generation_interval=10,
            window_size=10,
        )
        initial = RoundRobinLayout(8)
        manager.register(initial)
        for _ in range(60):
            manager.observe(x_query(rng), protected=[initial.layout_id])
        assert initial.layout_id in manager.layouts

    def test_prune_similar_removes_worse_twin(self, simple_table, rng):
        manager, _ = make_manager(
            simple_table, rng, prune_interval=30, epsilon=0.05
        )
        # Two identical layouts (ε-close by construction) + one different.
        twin_a = RoundRobinLayout(8)
        twin_b = RoundRobinLayout(8)
        ranged = RangeLayoutBuilder("x").build(simple_table, [], 8, rng)
        for layout in (twin_a, twin_b, ranged):
            manager.register(layout)
        removed = []
        for _ in range(30):
            events = manager.observe(x_query(rng), protected=[ranged.layout_id])
            removed.extend(events.removed)
        assert len(removed) == 1
        assert removed[0] in {twin_a.layout_id, twin_b.layout_id}
        assert ranged.layout_id in manager.layouts
