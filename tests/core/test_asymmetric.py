"""Tests for the asymmetric-cost MTS extensions (Appendix C analogue)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TwoStateCounterAlgorithm, WorkFunctionAlgorithm, solve_offline


def symmetric_matrix(n, alpha):
    matrix = np.full((n, n), float(alpha))
    np.fill_diagonal(matrix, 0.0)
    return matrix


class TestWorkFunctionValidation:
    def test_requires_two_states(self):
        with pytest.raises(ValueError):
            WorkFunctionAlgorithm(["a"], np.zeros((1, 1)))

    def test_square_matrix(self):
        with pytest.raises(ValueError):
            WorkFunctionAlgorithm(["a", "b"], np.zeros((2, 3)))

    def test_zero_diagonal(self):
        matrix = np.array([[1.0, 1.0], [1.0, 0.0]])
        with pytest.raises(ValueError, match="self-distances"):
            WorkFunctionAlgorithm(["a", "b"], matrix)

    def test_negative_distances(self):
        matrix = np.array([[0.0, -1.0], [1.0, 0.0]])
        with pytest.raises(ValueError):
            WorkFunctionAlgorithm(["a", "b"], matrix)

    def test_triangle_inequality(self):
        matrix = np.array(
            [[0.0, 1.0, 10.0], [1.0, 0.0, 1.0], [10.0, 1.0, 0.0]]
        )
        with pytest.raises(ValueError, match="triangle"):
            WorkFunctionAlgorithm(["a", "b", "c"], matrix)

    def test_matrix_size_must_match_states(self):
        with pytest.raises(ValueError, match="size"):
            WorkFunctionAlgorithm(["a", "b", "c"], symmetric_matrix(2, 1.0))

    def test_unknown_initial_state(self):
        with pytest.raises(ValueError):
            WorkFunctionAlgorithm(["a", "b"], symmetric_matrix(2, 1.0), initial_state="z")


class TestWorkFunctionBehaviour:
    def test_stays_on_cheap_state(self):
        wfa = WorkFunctionAlgorithm(["a", "b"], symmetric_matrix(2, 5.0), "a")
        for _ in range(10):
            decision = wfa.observe({"a": 0.0, "b": 1.0})
            assert decision.serviced_in == "a"
            assert not decision.switched

    def test_eventually_abandons_bad_state(self):
        wfa = WorkFunctionAlgorithm(["a", "b"], symmetric_matrix(2, 2.0), "a")
        switched = False
        for _ in range(20):
            decision = wfa.observe({"a": 1.0, "b": 0.0})
            switched = switched or decision.switched
        assert switched
        assert wfa.current == "b"

    def test_asymmetric_costs_respected(self):
        # Leaving a is cheap (0.5) but returning costs 10.
        matrix = np.array([[0.0, 0.5], [10.0, 0.0]])
        wfa = WorkFunctionAlgorithm(["a", "b"], matrix, "a")
        total = 0.0
        for _ in range(30):
            total += wfa.observe({"a": 0.4, "b": 0.0}).total_cost
        assert wfa.current == "b"
        assert total < 30 * 0.4  # beat the never-move strategy

    def test_competitive_on_random_instances(self):
        """WFA is (2n-1)-competitive; check cost ≤ 3·OPT + slack on 2 states."""
        rng = np.random.default_rng(0)
        for _trial in range(10):
            costs = rng.uniform(0, 1, size=(150, 2))
            alpha = 2.0
            wfa = WorkFunctionAlgorithm(["a", "b"], symmetric_matrix(2, alpha), "a")
            online = sum(
                wfa.observe({"a": c[0], "b": c[1]}).total_cost for c in costs
            )
            opt = solve_offline(costs, alpha, initial_state=0).total_cost
            assert online <= 3.0 * opt + 3.0 * alpha


class TestTwoStateCounter:
    def test_requires_exactly_two_states(self):
        with pytest.raises(ValueError):
            TwoStateCounterAlgorithm(["a"], 1.0, 1.0)
        with pytest.raises(ValueError):
            TwoStateCounterAlgorithm(["a", "b", "c"], 1.0, 1.0)

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            TwoStateCounterAlgorithm(["a", "b"], -1.0, 1.0)

    def test_no_switch_without_regret(self):
        algorithm = TwoStateCounterAlgorithm(["a", "b"], 2.0, 2.0, "a")
        for _ in range(50):
            decision = algorithm.observe({"a": 0.0, "b": 1.0})
            assert not decision.switched

    def test_switch_after_roundtrip_regret(self):
        algorithm = TwoStateCounterAlgorithm(["a", "b"], 1.0, 1.0, "a")
        decisions = [algorithm.observe({"a": 1.0, "b": 0.0}) for _ in range(2)]
        assert decisions[-1].switched
        assert decisions[-1].movement_cost == 1.0
        assert algorithm.current == "b"

    def test_asymmetric_threshold(self):
        # Round trip costs 1 + 3 = 4; regret accrues 0.5 per step -> 8 steps.
        algorithm = TwoStateCounterAlgorithm(["a", "b"], 1.0, 3.0, "a")
        switch_step = None
        for step in range(20):
            if algorithm.observe({"a": 0.5, "b": 0.0}).switched:
                switch_step = step
                break
        assert switch_step == 7  # regret reaches 4.0 on the 8th query

    def test_regret_resets_after_switch(self):
        algorithm = TwoStateCounterAlgorithm(["a", "b"], 1.0, 1.0, "a")
        for _ in range(2):
            algorithm.observe({"a": 1.0, "b": 0.0})
        assert algorithm.current == "b"
        assert algorithm.regret == 0.0

    def test_negative_regret_clamped(self):
        """Being better than the alternative must not bank negative regret."""
        algorithm = TwoStateCounterAlgorithm(["a", "b"], 1.0, 1.0, "a")
        for _ in range(10):
            algorithm.observe({"a": 0.0, "b": 1.0})  # a is better; no debt
        algorithm.observe({"a": 1.0, "b": 0.0})
        algorithm.observe({"a": 1.0, "b": 0.0})
        assert algorithm.current == "b"  # switched despite the good history

    def test_constant_competitive_on_random_instances(self):
        rng = np.random.default_rng(1)
        for _trial in range(10):
            costs = rng.uniform(0, 1, size=(150, 2))
            out_cost, back_cost = 1.0, 3.0
            algorithm = TwoStateCounterAlgorithm(["a", "b"], out_cost, back_cost, "a")
            online = sum(
                algorithm.observe({"a": c[0], "b": c[1]}).total_cost for c in costs
            )
            # OPT under the symmetric upper bound of the two movement costs.
            opt = solve_offline(costs, min(out_cost, back_cost), initial_state=0).total_cost
            assert online <= 5.0 * opt + 2 * (out_cost + back_cost)
