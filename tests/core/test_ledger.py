"""Tests for the run ledger."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import RunLedger


class TestRunLedger:
    def test_empty_ledger(self):
        ledger = RunLedger()
        assert ledger.num_queries == 0
        assert ledger.total_cost == 0.0
        assert ledger.num_switches == 0

    def test_record_accumulates(self):
        ledger = RunLedger()
        ledger.record(0.5, 0.0, "a", switched=False)
        ledger.record(0.3, 2.0, "b", switched=True)
        assert ledger.num_queries == 2
        assert ledger.total_query_cost == pytest.approx(0.8)
        assert ledger.total_reorg_cost == pytest.approx(2.0)
        assert ledger.total_cost == pytest.approx(2.8)

    def test_switch_steps_recorded(self):
        ledger = RunLedger()
        ledger.record(0.1, 0.0, "a", switched=False)
        ledger.record(0.1, 1.0, "b", switched=True)
        ledger.record(0.1, 0.0, "b", switched=False)
        assert ledger.switch_steps == [1]
        assert ledger.num_switches == 1

    def test_layout_history(self):
        ledger = RunLedger()
        for layout in ("a", "a", "b"):
            ledger.record(0.0, 0.0, layout, switched=False)
        assert ledger.layout_history == ["a", "a", "b"]

    def test_cumulative_costs_monotone(self):
        ledger = RunLedger()
        rng = np.random.default_rng(0)
        for _ in range(50):
            ledger.record(float(rng.uniform(0, 1)), 0.0, "a", switched=False)
        trajectory = ledger.cumulative_costs()
        assert len(trajectory) == 50
        assert np.all(np.diff(trajectory) >= 0)
        assert trajectory[-1] == pytest.approx(ledger.total_cost)

    def test_summary_freeze(self):
        ledger = RunLedger()
        ledger.record(0.5, 1.0, "a", switched=True)
        summary = ledger.summary()
        assert summary.total_query_cost == pytest.approx(0.5)
        assert summary.total_reorg_cost == pytest.approx(1.0)
        assert summary.total_cost == pytest.approx(1.5)
        assert summary.num_switches == 1
        assert summary.num_queries == 1
