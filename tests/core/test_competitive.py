"""Empirical verification of Theorem IV.1's competitive guarantee.

The theorem: Algorithm 4 solves D-UMTS with expected competitive ratio at
most 2·H(|S_max|).  We cannot test an expectation exactly, so we (a) average
the randomized algorithm over many seeds, (b) compare against the *exact*
offline optimum from the DP solver, and (c) allow the additive O(alpha)
slack that any finite-horizon competitive statement carries (the bound is
asymptotic: cost_online ≤ ratio·OPT + c).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DynamicUMTS, solve_offline


def harmonic(n: int) -> float:
    return float(sum(1.0 / k for k in range(1, n + 1)))


def run_online(costs, alpha, seed, states):
    algorithm = DynamicUMTS(
        states, alpha, np.random.default_rng(seed), initial_state=states[0]
    )
    total = 0.0
    for row in costs:
        decision = algorithm.observe({s: row[i] for i, s in enumerate(states)})
        total += decision.total_cost
    return total


def average_online_cost(costs, alpha, states, num_seeds=40):
    return float(
        np.mean([run_online(costs, alpha, seed, states) for seed in range(num_seeds)])
    )


@pytest.mark.parametrize("num_states", [2, 3, 5])
@pytest.mark.parametrize("instance_seed", [0, 1, 2])
def test_random_instances_respect_bound(num_states, instance_seed):
    rng = np.random.default_rng(instance_seed)
    alpha = 3.0
    num_tasks = 400
    costs = rng.uniform(0, 1, size=(num_tasks, num_states))
    states = [f"s{i}" for i in range(num_states)]

    online = average_online_cost(costs, alpha, states)
    opt = solve_offline(costs, alpha, initial_state=0).total_cost
    bound = 2.0 * harmonic(num_states)
    # Additive slack: one unfinished phase can cost up to ~bound * alpha.
    assert online <= bound * opt + bound * alpha


def test_adversarial_phase_instance_respects_bound():
    """Cost concentrated on the online algorithm's current state.

    The classic lower-bound instance: at every step the adversary charges 1
    to one state and 0 elsewhere, cycling so each state fills in turn.
    """
    num_states = 4
    alpha = 2.0
    states = [f"s{i}" for i in range(num_states)]
    num_tasks = 320
    costs = np.zeros((num_tasks, num_states))
    for t in range(num_tasks):
        costs[t, t % num_states] = 1.0

    online = average_online_cost(costs, alpha, states)
    opt = solve_offline(costs, alpha, initial_state=0).total_cost
    bound = 2.0 * harmonic(num_states)
    assert online <= bound * opt + bound * alpha


def test_dynamic_instance_respects_smax_bound():
    """Add/remove states mid-stream; compare against the availability-aware OPT."""
    alpha = 3.0
    rng = np.random.default_rng(7)
    num_tasks = 300
    all_states = [f"s{i}" for i in range(5)]
    costs = rng.uniform(0, 1, size=(num_tasks, 5))
    availability = np.ones((num_tasks, 5), dtype=bool)
    # States 3 and 4 exist only in the middle third; state 1 vanishes there.
    availability[: num_tasks // 3, 3:] = False
    availability[2 * num_tasks // 3 :, 3:] = False
    availability[num_tasks // 3 : 2 * num_tasks // 3, 1] = False

    def run_dynamic(seed):
        algorithm = DynamicUMTS(
            all_states[:3], alpha, np.random.default_rng(seed), initial_state="s0"
        )
        total = 0.0
        for t in range(num_tasks):
            if t == num_tasks // 3:
                algorithm.add_state("s3")
                algorithm.add_state("s4")
                algorithm.remove_state("s1")
                total += 0.0  # removal of a non-current state is free
            if t == 2 * num_tasks // 3:
                for victim in ("s3", "s4"):
                    forced = algorithm.remove_state(victim)
                    if forced is not None:
                        total += alpha  # eviction from the current state
                algorithm.add_state("s1")
            live = algorithm.state_names
            decision = algorithm.observe(
                {s: costs[t][all_states.index(s)] for s in live}
            )
            total += decision.total_cost
        return total, algorithm.smax

    results = [run_dynamic(seed) for seed in range(40)]
    online = float(np.mean([r[0] for r in results]))
    smax = results[0][1]
    opt = solve_offline(costs, alpha, availability=availability, initial_state=0).total_cost
    bound = 2.0 * harmonic(smax)
    assert online <= bound * opt + bound * alpha


def test_online_cannot_beat_offline_on_average():
    """Sanity: OPT with hindsight is never (meaningfully) worse than online."""
    rng = np.random.default_rng(3)
    costs = rng.uniform(0, 1, size=(200, 3))
    states = ["a", "b", "c"]
    online = average_online_cost(costs, 2.0, states, num_seeds=20)
    opt = solve_offline(costs, 2.0, initial_state=0).total_cost
    assert opt <= online + 1e-9


def test_theorem_bound_matches_paper_formula():
    """2·H(n) <= 2(1 + ln n) as stated in Theorem IV.1."""
    for n in range(1, 50):
        assert 2 * harmonic(n) <= 2 * (1 + np.log(n)) + 1e-12
