"""Stateful property testing of the multi-copy variant.

Random interleavings of queries and state additions must preserve the
budget invariant (never hold more copies than allowed), the servicing
invariant (queries served by the cheapest held layout), and the accounting
invariant (movement cost = α × materializations).
"""

from __future__ import annotations

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core import MultiCopyUMTS

ALPHA = 2.5
BUDGET = 2


class MultiCopyMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.algorithm = MultiCopyUMTS(
            ["s0", "s1", "s2"],
            ALPHA,
            BUDGET,
            np.random.default_rng(0),
            initial_states=("s0",),
        )
        self._next_state_id = 3
        self.movement_paid = 0.0
        self.materializations = 0

    @rule(seed=st.integers(0, 2**16))
    def service_query(self, seed):
        rng = np.random.default_rng(seed)
        costs = {s: float(rng.uniform(0, 1)) for s in self.algorithm.states}
        held_before = list(self.algorithm.held)
        decision = self.algorithm.observe(costs)
        # Serviced by the cheapest held copy as of arrival.
        cheapest = min(held_before, key=lambda s: costs[s])
        assert decision.service_cost == costs[cheapest]
        self.movement_paid += decision.movement_cost
        if decision.materialized is not None:
            self.materializations += 1

    @rule()
    def add_state(self):
        self.algorithm.add_state(f"s{self._next_state_id}")
        self._next_state_id += 1

    @invariant()
    def budget_respected(self):
        assert 1 <= len(self.algorithm.held) <= BUDGET

    @invariant()
    def held_states_exist(self):
        assert set(self.algorithm.held) <= set(self.algorithm.states)

    @invariant()
    def held_states_distinct(self):
        assert len(self.algorithm.held) == len(set(self.algorithm.held))

    @invariant()
    def movement_accounting(self):
        assert self.movement_paid == self.materializations * ALPHA


MultiCopyMachine.TestCase.settings = settings(
    max_examples=50, stateful_step_count=50, deadline=None
)
TestMultiCopyStateMachine = MultiCopyMachine.TestCase
