"""Local mirror of CI's mypy gate over the public API surface.

CI installs mypy and type-checks ``repro.engine``, ``repro.storage``,
``repro.core.cost_model`` and the three vectorized kernel tiers
(``repro.layouts.zonemaps`` / ``workload_compiler`` / ``stacked``)
against ``mypy.ini`` — strict-optional, so lifecycle invariants are
narrowed explicitly — keeping the policy/event protocol contracts
honest.  This test reproduces that gate wherever mypy happens to be
installed, and skips (rather than fails) where it is not — the tier-1
environment only guarantees numpy/pytest/hypothesis.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

pytest.importorskip("mypy")

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_public_api_surface_typechecks():
    completed = subprocess.run(
        [
            sys.executable,
            "-m",
            "mypy",
            "--config-file",
            "mypy.ini",
            "-p",
            "repro.engine",
            "-p",
            "repro.storage",
            "-m",
            "repro.core.cost_model",
            "-m",
            "repro.layouts.zonemaps",
            "-m",
            "repro.layouts.workload_compiler",
            "-m",
            "repro.layouts.stacked",
        ],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stdout + completed.stderr
