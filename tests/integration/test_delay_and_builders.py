"""Integration tests: delay semantics at the OREO level, builder agnosticism.

The Δ experiment (Table II) rests on two invariants that must hold for the
*whole* pipeline, not just the reorganizer unit: reorganization cost is
identical for any Δ (decisions don't change; cost is charged at decision
time), and query cost can only get worse as Δ grows (savings arrive late).
We verify them by running identical streams through OREO with different
delays and a fixed seed.

Builder agnosticism (§III-B): the same OREO instance must run unmodified
over any LayoutBuilder; we exercise Z-order and Qd-tree and check both
adapt under drift.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import OREO, CostEvaluator, OreoConfig
from repro.layouts import QdTreeBuilder, RangeLayoutBuilder, ZOrderLayoutBuilder
from repro.queries import between
from repro.storage import ColumnSpec, Schema, Table
from repro.workloads import generate_stream
from repro.workloads.templates import QueryTemplate


def make_setup(seed=0, num_rows=20_000):
    rng = np.random.default_rng(seed)
    schema = Schema(
        columns=tuple(ColumnSpec(f"c{i}", "numeric") for i in range(3))
    )
    table = Table(
        schema, {f"c{i}": rng.uniform(0, 100, num_rows) for i in range(3)}
    )

    def template(i):
        def sample(rng):
            start = float(rng.uniform(0, 92))
            return between(f"c{i}", start, start + 4.0)

        return QueryTemplate(f"col-{i}", sample)

    templates = tuple(template(i) for i in range(3))
    stream = generate_stream(
        templates, 1_200, 4, np.random.default_rng(seed + 1), min_segment_length=200
    )
    return table, stream


def run_oreo(table, stream, builder, delay=0, seed=7, **overrides):
    config = OreoConfig(
        alpha=20.0,
        window_size=60,
        generation_interval=60,
        num_partitions=12,
        data_sample_fraction=0.1,
        delay=delay,
        **overrides,
    )
    oreo = OREO(
        table,
        builder,
        RangeLayoutBuilder("c0").build(
            table.sample(0.1, np.random.default_rng(seed)), [], 12,
            np.random.default_rng(seed),
        ),
        config,
        np.random.default_rng(seed),
        CostEvaluator(table),
    )
    return oreo, oreo.run(stream)


class TestDelayInvariants:
    def test_reorg_cost_independent_of_delay(self):
        table, stream = make_setup()
        summaries = {}
        for delay in (0, 10, 20):
            _, summary = run_oreo(table, stream, QdTreeBuilder(), delay=delay)
            summaries[delay] = summary
        reorg_costs = {s.total_reorg_cost for s in summaries.values()}
        assert len(reorg_costs) == 1
        switch_counts = {s.num_switches for s in summaries.values()}
        assert len(switch_counts) == 1

    def test_query_cost_monotone_in_delay(self):
        table, stream = make_setup()
        _, fast = run_oreo(table, stream, QdTreeBuilder(), delay=0)
        _, slow = run_oreo(table, stream, QdTreeBuilder(), delay=20)
        assert slow.total_query_cost >= fast.total_query_cost - 1e-9

    def test_delay_effect_bounded_by_stalled_queries(self):
        """The extra cost is at most (switches x delay) full scans."""
        table, stream = make_setup()
        _, fast = run_oreo(table, stream, QdTreeBuilder(), delay=0)
        _, slow = run_oreo(table, stream, QdTreeBuilder(), delay=20)
        extra = slow.total_query_cost - fast.total_query_cost
        assert extra <= fast.num_switches * 20 + 1e-9


class TestBuilderAgnosticism:
    @pytest.mark.parametrize("builder_kind", ["qdtree", "zorder"])
    def test_oreo_adapts_with_either_builder(self, builder_kind):
        table, stream = make_setup()
        if builder_kind == "qdtree":
            builder = QdTreeBuilder()
        else:
            builder = ZOrderLayoutBuilder(num_columns=2, default_columns=("c0",))
        oreo, summary = run_oreo(table, stream, builder)
        # With strong rotating drift both builders must produce admitted
        # candidates and at least one reorganization.
        assert oreo.manager.num_states >= 2
        assert summary.num_switches >= 1

    def test_never_reorganizing_builder_static_behaviour(self):
        """A builder stuck on one column gives OREO nothing to switch to —
        candidates are ε-identical and the state space stays minimal."""
        table, stream = make_setup()
        builder = RangeLayoutBuilder("c0")  # same layout every time
        oreo, summary = run_oreo(table, stream, builder)
        assert oreo.manager.num_states <= 2
