"""End-to-end claims of the paper, asserted on engineered drifting workloads.

These tests reproduce the *shape* of the headline results at test scale:

* under workload drift, dynamic reorganization with OREO beats the single
  workload-optimized static layout on total cost (Figure 3's claim);
* a static layout tuned to a drifting workload achieves almost no skipping
  on regimes it wasn't tuned for (the technical report's Appendix A
  example);
* the oracle ordering of Figure 4 holds: Offline Optimal ≤ MTS Optimal and
  Offline Optimal ≤ OREO in query cost;
* Greedy reorganizes at least as often as OREO, Regret at most as often
  (Figure 3's qualitative characterization).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import ExperimentHarness, HarnessConfig
from repro.layouts import QdTreeBuilder
from repro.queries import between
from repro.storage import ColumnSpec, Schema, Table
from repro.workloads import generate_stream
from repro.workloads.dataset import DatasetBundle
from repro.workloads.templates import QueryTemplate

NUM_COLUMNS = 4


def rotating_bundle(num_rows=30_000, seed=0) -> DatasetBundle:
    """The paper's motivating drift pattern (§V-A): the workload rotates
    through columns, issuing narrow range queries on one column at a time.
    A layout tuned to column ``ci`` is useless for column ``cj``."""
    rng = np.random.default_rng(seed)
    schema = Schema(
        columns=tuple(ColumnSpec(f"c{i}", "numeric") for i in range(NUM_COLUMNS))
    )
    table = Table(
        schema,
        {f"c{i}": rng.uniform(0, 100, size=num_rows) for i in range(NUM_COLUMNS)},
    )

    def make_template(i):
        def sample(rng):
            start = float(rng.uniform(0, 95))
            return between(f"c{i}", start, start + 5.0)

        return QueryTemplate(f"col-{i}", sample)

    templates = tuple(make_template(i) for i in range(NUM_COLUMNS))
    return DatasetBundle(
        name="rotating", table=table, templates=templates, default_sort_column="c0"
    )


@pytest.fixture(scope="module")
def harness():
    # The paper's operating regime (§III-C): query patterns stay stable for
    # much longer than a reorganization takes to pay off.  Segments of ≥400
    # queries against α=25 leave most of a segment to enjoy the tuned layout
    # after the (bounded) exploration the randomized algorithm performs.
    bundle = rotating_bundle()
    stream = generate_stream(
        bundle.templates, 3_000, 5, np.random.default_rng(3), min_segment_length=400
    )
    config = HarnessConfig(
        alpha=25.0,
        window_size=75,
        generation_interval=75,
        num_partitions=16,
        data_sample_fraction=0.05,
        seed=0,
    )
    return ExperimentHarness(bundle, stream, QdTreeBuilder(), config)


@pytest.fixture(scope="module")
def results(harness):
    return harness.run_all(
        methods=("static", "oreo", "greedy", "regret", "mts-optimal", "offline-optimal")
    )


class TestHeadlineClaim:
    def test_oreo_beats_static_under_drift(self, results):
        """The paper's headline: up to 32% total-cost improvement."""
        static_cost = results["static"].summary.total_cost
        oreo_cost = results["oreo"].summary.total_cost
        assert oreo_cost < static_cost

    def test_oreo_improvement_is_substantial(self, results):
        static_cost = results["static"].summary.total_cost
        oreo_cost = results["oreo"].summary.total_cost
        improvement = 1.0 - oreo_cost / static_cost
        assert improvement > 0.10  # expect ≫10% on strongly drifting workloads

    def test_oreo_actually_reorganizes(self, results):
        assert results["oreo"].summary.num_switches >= 3


class TestAppendixAAnalogue:
    def test_static_layout_barely_skips_under_rotation(self, harness, results):
        """A layout tuned to all regimes at once skips little per query:
        with 6 rotating columns and 16 partitions, the static qd-tree cannot
        isolate any single column's ranges well."""
        static_query_cost = results["static"].summary.total_query_cost
        num_queries = results["static"].summary.num_queries
        average_cost = static_query_cost / num_queries
        # Offline per-template layouts achieve far lower cost:
        offline_avg = (
            results["offline-optimal"].summary.total_query_cost / num_queries
        )
        assert average_cost > 2.0 * offline_avg


class TestOracleOrdering:
    def test_offline_optimal_lower_bounds_query_cost(self, results):
        offline_query = results["offline-optimal"].summary.total_query_cost
        for method in ("oreo", "mts-optimal", "static", "greedy", "regret"):
            assert results[method].summary.total_query_cost >= offline_query - 1e-9

    def test_oreo_within_theorem_bound_of_opt(self, results, harness):
        """Loose end-to-end check of the Theorem IV.1 guarantee, using the
        offline-optimal total cost as an upper bound proxy for OPT (the true
        OPT over the dynamic state space is no larger)."""
        oreo = results["oreo"]
        smax = oreo.extras["smax"]
        bound = 2.0 * (1.0 + np.log(max(smax, 1)))
        opt_proxy = results["offline-optimal"].summary.total_cost
        slack = bound * harness.config.alpha
        assert oreo.summary.total_cost <= bound * opt_proxy + slack


class TestOnlineStrategyCharacter:
    def test_greedy_switches_most(self, results):
        assert (
            results["greedy"].summary.num_switches
            >= results["oreo"].summary.num_switches
        )

    def test_regret_is_most_conservative(self, results):
        assert (
            results["regret"].summary.num_switches
            <= results["greedy"].summary.num_switches
        )

    def test_greedy_query_cost_is_lower_envelope(self, results):
        """Greedy pays any reorg price for query savings, so its query cost
        is the lowest among the online methods sharing the candidate feed."""
        greedy_query = results["greedy"].summary.total_query_cost
        assert greedy_query <= results["regret"].summary.total_query_cost * 1.1

    def test_all_methods_processed_full_stream(self, results, harness):
        for result in results.values():
            assert result.summary.num_queries == len(harness.stream)
