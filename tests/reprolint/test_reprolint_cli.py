"""CLI contract: exit codes, --json schema, --select, --list-rules."""

from __future__ import annotations

import json
from pathlib import Path

from tools.reprolint.cli import main

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def test_exit_zero_and_clean_banner_on_clean_tree(tmp_path, capsys):
    (tmp_path / "clean.py").write_text('"""Nothing to see."""\n')
    assert main([str(tmp_path / "clean.py"), "--root", str(tmp_path)]) == 0
    assert "reprolint clean" in capsys.readouterr().out


def test_exit_one_and_rendered_findings_on_violations(capsys):
    code = main(
        [str(FIXTURES / "rpr001_bad.py"), "--root", str(FIXTURES), "--select", "RPR001"]
    )
    captured = capsys.readouterr()
    assert code == 1
    assert "rpr001_bad.py:" in captured.out
    assert "RPR001" in captured.out
    assert "finding(s)" in captured.err


def test_exit_two_on_missing_path(tmp_path, capsys):
    assert main([str(tmp_path / "no_such_dir")]) == 2
    assert "no such path" in capsys.readouterr().err


def test_json_output_schema(capsys):
    code = main(
        [
            str(FIXTURES / "rpr001_bad.py"),
            "--root",
            str(FIXTURES),
            "--select",
            "RPR001",
            "--json",
        ]
    )
    assert code == 1
    report = json.loads(capsys.readouterr().out)
    assert report["count"] == len(report["findings"]) > 0
    finding = report["findings"][0]
    assert finding["rule"] == "RPR001"
    assert finding["path"] == "rpr001_bad.py"
    assert set(finding) == {"rule", "message", "path", "line", "col"}


def test_select_restricts_to_named_rules(capsys):
    # rpr006_bad.py violates RPR006 and (being marked but unregistered)
    # RPR005; selecting RPR005 must hide the hygiene findings.
    code = main(
        [str(FIXTURES / "rpr006_bad.py"), "--root", str(FIXTURES), "--select", "RPR005"]
    )
    out = capsys.readouterr().out
    assert code == 1
    assert "RPR005" in out
    assert "RPR006" not in out


def test_list_rules_prints_the_full_catalogue(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in [f"RPR00{i}" for i in range(1, 10)]:
        assert rule_id in out
