"""Reprolint rule fixtures: deliberately broken and deliberately clean.

Each ``rprNNN_bad.py`` violates exactly the invariant rule RPRNNN
checks; each ``rprNNN_good.py`` exercises the same code shape without
violating it.  The fixtures are linted by ``tests/test_reprolint.py``
(never imported or executed), so they may reference names that do not
exist at runtime.
"""
