"""RPR009 fixture: complete relays and selective observers stay quiet."""


class EngineEvents:
    def on_open(self, engine):
        pass

    def on_query(self, query, result):
        pass

    def on_commit(self, source_id, target_id):
        pass

    def on_charge(self, amount):
        pass


class CompleteRecorder(EngineEvents):
    # The relay idiom, complete: every base hook forwards through the
    # same private channel, so nothing is dropped from the stream.
    def __init__(self):
        self.records = []

    def _record(self, name, **payload):
        self.records.append((name, payload))

    def on_open(self, engine):
        self._record("open")

    def on_query(self, query, result):
        self._record("query", rows=result.rows)

    def on_commit(self, source_id, target_id):
        self._record("commit", source_id=source_id, target_id=target_id)

    def on_charge(self, amount):
        self._record("charge", amount=amount)


class CompleteFanout(EngineEvents):
    # Broadcast flavour: the channel is an attr call (self._sinks is a
    # list forwarded through a private helper).
    def __init__(self, sinks):
        self._sinks = sinks

    def _fan(self, name, *args):
        for sink in self._sinks:
            getattr(sink, name)(*args)

    def on_open(self, engine):
        self._fan("on_open", engine)

    def on_query(self, query, result):
        self._fan("on_query", query, result)

    def on_commit(self, source_id, target_id):
        self._fan("on_commit", source_id, target_id)

    def on_charge(self, amount):
        self._fan("on_charge", amount)


class SelectiveObserver(EngineEvents):
    # Not a relay: handles two hooks directly with no shared private
    # channel — watching a subset is a legitimate observer shape.
    def __init__(self):
        self.opened = False
        self.total = 0.0

    def on_open(self, engine):
        self.opened = True

    def on_charge(self, amount):
        self.total += amount


class SingleHookProbe(EngineEvents):
    # One override can never establish the relay idiom.
    def _note(self, name):
        print(name)

    def on_open(self, engine):
        self._note("open")
