"""RPR001 fixture: raw partition-file mutation outside PartitionStore."""

import shutil

import numpy as np


def write_partition_directly(path, arrays):
    # A direct partition-file write bypassing the staging protocol: a
    # crash after this line leaves a half-written epoch visible.
    np.savez_compressed(path, **arrays)


def clobber_layout(layout_dir):
    shutil.rmtree(layout_dir)


def drop_one_file(path):
    path.unlink()


def swap_epochs(old_dir, new_dir):
    old_dir.rename(new_dir)
