# reprolint: vectorized
"""RPR005 fixture: a vectorized kernel whose oracle test is registered.

The test suite runs OracleCoverageRule with a registry mapping this
module to ``rpr005_oracle_stub.py``, which references both tokens.
"""

import numpy as np


class FixtureKernel:
    def may_match(self, lo, hi):
        return np.minimum(lo, hi)
