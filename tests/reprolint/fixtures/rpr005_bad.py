# reprolint: vectorized
"""RPR005 fixture: a vectorized kernel with no registered oracle test.

The marker opts the module into the kernel tier, but nothing maps it to
a differential test file — the coverage gate must notice.
"""

import numpy as np


def fused_kernel(values):
    return np.cumsum(values)
