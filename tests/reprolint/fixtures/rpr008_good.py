"""RPR008 fixture: a curated __all__ that matches the definitions."""

__all__ = ["PublicThing", "exported", "CONSTANT"]

CONSTANT = 7


class PublicThing:
    def method(self):
        return CONSTANT


def exported():
    return PublicThing()


def _internal_helper():
    return None
