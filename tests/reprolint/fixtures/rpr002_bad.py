"""RPR002 fixture: produced ReorgDeltas silently discarded."""


def fire_and_forget(store, stored, layout, schema):
    # Bare-expression call: the ReorgResult (and its delta) evaporates.
    reorganize(store, stored, layout, schema)  # noqa: F821


def bound_to_underscore(old_snapshot, new_snapshot):
    _ = compute_reorg_delta(old_snapshot, new_snapshot)  # noqa: F821


def bound_but_never_used(store, new_layout):
    delta = store.compute_reorg_delta(new_layout)
    return None


def method_producer_dropped(incremental, new_layout):
    incremental.consolidate(new_layout)
