# reprolint: vectorized
"""RPR006 fixture: the same jobs done with whole-array kernels."""

import numpy as np


def grow_without_append(starts, sentinel):
    return np.diff(starts, append=sentinel)


def concatenate_once(pieces):
    return np.concatenate(list(pieces))


def per_partition_vectorized(partition_sizes, values):
    # One reduceat over the stacked values: no Python-level loop.
    starts = np.cumsum(partition_sizes)[:-1]
    return np.add.reduceat(values, np.concatenate([[0], starts]))


def explicit_copy_mutation(values):
    arr = np.array(values, copy=True)
    arr[0] = 0.0
    return arr
