"""RPR003 fixture: a state transition that never fires an EngineEvents hook."""


class SilentEngine:
    def __init__(self, events):
        self._events = events
        self._reset_lifetime_state()

    def _reset_lifetime_state(self):
        self._epoch = 0
        self._layout_id = None

    def adopt_layout(self, layout_id):
        # Mutates lifetime state with no on_* emission anywhere on the
        # path: an event-stream follower replaying this engine drifts.
        self._layout_id = layout_id
        self._epoch += 1

    def step(self):
        self._epoch += 1
        self._events.on_step(self._epoch)
