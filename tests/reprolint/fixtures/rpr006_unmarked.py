"""RPR006 fixture: the same anti-patterns in an UNMARKED module.

Hygiene rules key on the ``# reprolint: vectorized`` marker; glue code
that never opted in may use np.append freely.
"""

import numpy as np


def glue_code_append(starts, sentinel):
    return np.append(starts, sentinel)
