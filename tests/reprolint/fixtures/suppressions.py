# reprolint: disable-file=RPR002
"""Suppression fixture: every directive style silencing a real finding."""

import shutil

import numpy as np


def same_line(path, arrays):
    np.savez(path, **arrays)  # reprolint: disable=RPR001


def standalone_line(layout_dir):
    # reprolint: disable=RPR001
    shutil.rmtree(layout_dir)


def file_wide(old_snapshot, new_snapshot):
    # RPR002 violation silenced by the disable-file directive up top.
    compute_reorg_delta(old_snapshot, new_snapshot)  # noqa: F821


def still_caught(path):
    # No directive covers this line: the finding must survive.
    path.unlink()
