"""RPR002 fixture: every produced delta reaches a consumer (or the caller)."""


def delta_reaches_evaluator(evaluator, layout_id, old_snapshot, new_snapshot):
    delta = compute_reorg_delta(old_snapshot, new_snapshot)  # noqa: F821
    evaluator.revalidate(layout_id, delta)


def result_returned(store, stored, layout, schema):
    return reorganize(store, stored, layout, schema)  # noqa: F821


def tuple_unpacked(store, stored, layout, schema):
    new_stored, result = reorganize(store, stored, layout, schema)  # noqa: F821
    return new_stored, result.delta


def consolidate_used(incremental, new_layout, log):
    result = incremental.consolidate(new_layout)
    log.append(result)
