"""RPR003 fixture: every public state transition (transitively) emits."""


class ObservableEngine:
    def __init__(self, events):
        self._events = events
        self._reset_lifetime_state()

    def _reset_lifetime_state(self):
        self._epoch = 0
        self._layout_id = None
        self._plan_cache = None

    def adopt_layout(self, layout_id):
        self._layout_id = layout_id
        self._bump_epoch()

    def _bump_epoch(self):
        # Private helper: the emission is transitive through it.
        self._epoch += 1
        self._events.on_epoch(self._epoch)

    @property
    def plan(self):
        # Property getter: lazily caches, which is a mutation in letter
        # but a read in spirit — getters are exempt.
        if self._plan_cache is None:
            self._plan_cache = object()
        return self._plan_cache

    def describe(self):
        # Pure read: no tracked writes, no emission required.
        return (self._layout_id, self._epoch)
