"""RPR004 fixture: mutation paths skipping the in-flight-consolidation guard."""


class UnguardedStore:
    def __init__(self, store, layout):
        self.store = store
        self.layout = layout
        self._partitions = []
        self._consolidating = False

    def ingest(self, batch):
        # Appends partitions while a pipelined consolidation may have
        # frozen its read set — without ever consulting _consolidating.
        stored = self.store.write_partition_file(batch, None, 0, "dir")
        self._partitions.append(stored)

    def reset(self):
        self._partitions = []

    def compact(self, partition):
        # Deletes a partition file the frozen read set may still reference.
        self.store.remove_partition_file(partition)

    def consolidate(self, new_layout):
        if self._consolidating:
            raise RuntimeError("in flight")
        self.layout = new_layout
