"""RPR001 fixture: file lifecycle routed through the PartitionStore API."""


def materialize_through_store(store, table, layout):
    return store.materialize(table, layout)


def staged_rewrite(store, layout_id, write_files):
    staging = store.begin_staging(layout_id)
    write_files(staging)
    return store.commit_staging(layout_id)


def cleanup(store, stored):
    store.delete_layout(stored)
    store.remove_directory(store.root / "incremental-old")


def sanctioned_scratch_delete(tmp_file):
    # Non-partition bookkeeping owned by a test harness, explicitly
    # waved through with a justification.
    tmp_file.unlink()  # reprolint: disable=RPR001
