"""RPR007 fixture: snapshot rebinding paired with evaluator notification."""


class NotifyingStore:
    def __init__(self, evaluator, snapshot):
        self.evaluator = evaluator
        self._snapshot = snapshot
        self.evaluator.register_metadata("layout", snapshot)

    def swap_snapshot(self, layout_id, new_snapshot, delta):
        self._snapshot = new_snapshot
        self.evaluator.revalidate(layout_id, delta)

    def consolidated(self, layout_id, new_snapshot):
        self._snapshot = new_snapshot
        self._reregister(layout_id)

    def _reregister(self, layout_id):
        # Transitive notification through a private helper.
        self.evaluator.register_metadata(layout_id, self._snapshot)

    def describe(self):
        return self._snapshot
