"""RPR008 fixture: __all__ out of sync with the module's definitions."""

__all__ = ["exported", "renamed_away", "exported"]


def exported():
    return 1


def forgotten_public_function():
    # Public (no underscore) but missing from __all__.
    return 2


def _internal_helper():
    return 3
