"""RPR004 fixture: every mutation path consults the consolidation guard."""


class GuardedStore:
    def __init__(self, store, layout):
        self.store = store
        self.layout = layout
        self._partitions = []
        self._consolidating = False

    def ingest(self, batch):
        self._check_guard()
        stored = self.store.write_partition_file(batch, None, 0, "dir")
        self._partitions.append(stored)

    def _check_guard(self):
        # Transitive reference: the guard check lives in a helper.
        if self._consolidating:
            raise RuntimeError("an async consolidation is in flight")

    def reset(self):
        if self._consolidating:
            raise RuntimeError("an async consolidation is in flight")
        self._partitions = []

    def append(self, batch):
        # Dual-epoch sidecar idiom: consulting the guard means branching
        # on it — routing mid-flight batches instead of raising.
        directory = "sidecar" if self._consolidating else "dir"
        stored = self.store.write_partition_file(batch, None, 0, directory)
        self._partitions.append(stored)

    def compact(self, partition):
        self._check_guard()
        # remove_partition_file is a store mutator: the guard still applies.
        self.store.remove_partition_file(partition)
        self._partitions.remove(partition)

    @property
    def num_partitions(self):
        # Read-only surface: no guard needed.
        return len(self._partitions)
