"""RPR009 fixture: a relay that silently drops base hooks."""


class EngineEvents:
    def on_open(self, engine):
        pass

    def on_query(self, query, result):
        pass

    def on_commit(self, source_id, target_id):
        pass

    def on_charge(self, amount):
        pass


class LeakyRecorder(EngineEvents):
    # Relays through one private channel but forgot on_commit and
    # on_charge: a follower replaying this stream never sees either.
    def __init__(self):
        self.records = []

    def _record(self, name, **payload):
        self.records.append((name, payload))

    def on_open(self, engine):
        self._record("open")

    def on_query(self, query, result):
        self._record("query", rows=result.rows)


class LeakyFanout(EngineEvents):
    # Same bug, broadcast flavour: only on_charge is missing — exactly
    # the hook the ledger-equality tests replay.
    def __init__(self, sinks):
        self._sinks = sinks

    def _fan(self, name, *args):
        for sink in self._sinks:
            getattr(sink, name)(*args)

    def on_open(self, engine):
        self._fan("on_open", engine)

    def on_query(self, query, result):
        self._fan("on_query", query, result)

    def on_commit(self, source_id, target_id):
        self._fan("on_commit", source_id, target_id)
