"""RPR007 fixture: snapshot rebinding behind the evaluator's back."""


class StaleCachingStore:
    def __init__(self, evaluator, snapshot):
        self.evaluator = evaluator
        self._snapshot = snapshot
        self.evaluator.register_metadata("layout", snapshot)

    def swap_snapshot(self, new_snapshot):
        # The evaluator keeps serving prices cached against the old
        # snapshot: classic stale-metadata bug.
        self._snapshot = new_snapshot

    def describe(self):
        return self._snapshot
