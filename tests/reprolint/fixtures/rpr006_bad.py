# reprolint: vectorized
"""RPR006 fixture: Python back in the hot path of a vectorized module."""

import numpy as np


def grow_by_append(starts, sentinel):
    return np.append(starts, sentinel)


def grow_in_loop(pieces):
    out = np.empty(0)
    for piece in pieces:
        out = np.concatenate([out, piece])
    return out


def per_partition_loop(partitions):
    totals = []
    for partition in partitions:
        totals.append(np.sum(partition.values))
    return totals


def silent_copy_mutation(values):
    arr = np.asarray(values)
    arr[0] = 0.0
    return arr
