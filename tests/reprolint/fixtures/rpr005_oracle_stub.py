"""Stand-in differential test for the RPR005 good fixture.

References ``FixtureKernel`` and ``may_match`` so the registered-token
check passes.
"""
