"""Make ``tools.reprolint`` importable for the rule-level tests.

The checker lives at the repository root (next to ``src/``), outside the
``PYTHONPATH=src`` tree the product tests use; insert the root so the
fixture tests can drive the rules in-process.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))
