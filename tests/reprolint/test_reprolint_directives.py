"""Suppression directives, finding rendering, and runner edge cases."""

from __future__ import annotations

import ast
from pathlib import Path

from tools.reprolint import Finding, ModuleContext, run

FIXTURES = Path(__file__).resolve().parent / "fixtures"


# ------------------------------------------------------------- suppressions
def test_all_three_directive_styles_silence_their_findings():
    findings = run(
        [FIXTURES / "suppressions.py"],
        root=FIXTURES,
        select={"RPR001", "RPR002"},
    )
    # Same-line disable, standalone-line disable and disable-file each
    # silenced one finding; only the undirected unlink survives.
    assert len(findings) == 1
    assert findings[0].rule_id == "RPR001"
    assert ".unlink" in findings[0].message


def test_directive_in_a_string_literal_does_not_suppress(tmp_path):
    module = tmp_path / "spoof.py"
    module.write_text(
        "import shutil\n"
        'COMMENT = "# reprolint: disable=RPR001"\n'
        "def clobber(layout_dir):\n"
        "    shutil.rmtree(layout_dir)\n"
    )
    findings = run([module], root=tmp_path, select={"RPR001"})
    assert len(findings) == 1


def test_disable_only_covers_the_named_rule(tmp_path):
    module = tmp_path / "wrong_rule.py"
    module.write_text(
        "import shutil\n"
        "def clobber(layout_dir):\n"
        "    shutil.rmtree(layout_dir)  # reprolint: disable=RPR999\n"
    )
    findings = run([module], root=tmp_path, select={"RPR001"})
    assert len(findings) == 1


def test_directive_parsing_collects_markers_and_disables():
    source = (
        "# reprolint: vectorized\n"
        "# reprolint: disable-file=RPR008\n"
        "x = 1  # reprolint: disable=RPR001,RPR002\n"
    )
    module = ModuleContext(Path("m.py"), source, ast.parse(source))
    assert module.markers == {"vectorized"}
    assert module.file_disables == {"RPR008"}
    assert module.line_disables[3] == {"RPR001", "RPR002"}
    # Standalone directives on lines 1-2 cover the following line too.
    assert module.is_suppressed(Finding("RPR008", "m", Path("m.py"), 99))


# ------------------------------------------------------------------ runner
def test_syntax_error_reported_as_rpr000_not_crash(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("def unterminated(:\n")
    fine = tmp_path / "fine.py"
    fine.write_text("import shutil\nshutil.rmtree('x')\n")
    findings = run([tmp_path], root=tmp_path, select=None)
    rpr000 = [f for f in findings if f.rule_id == "RPR000"]
    assert len(rpr000) == 1 and rpr000[0].path == broken
    # The broken module did not mask findings in the healthy one.
    assert any(f.rule_id == "RPR001" and f.path == fine for f in findings)


def test_findings_are_stably_ordered_and_render_relative(tmp_path):
    module = tmp_path / "two.py"
    module.write_text(
        "import shutil\n"
        "def second(d):\n"
        "    shutil.rmtree(d)\n"
        "def first(p):\n"
        "    p.unlink()\n"
    )
    findings = run([module], root=tmp_path, select={"RPR001"})
    assert [f.line for f in findings] == [3, 5]
    rendered = findings[0].render(tmp_path)
    assert rendered.startswith("two.py:3:")
    assert findings[0].to_dict(tmp_path)["path"] == "two.py"
