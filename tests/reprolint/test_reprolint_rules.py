"""Every reprolint rule fires on its bad fixture and stays quiet on the good.

The fixtures under ``fixtures/`` are linted, never imported: each
``rprNNN_bad.py`` contains the exact protocol violation rule RPRNNN
exists to catch, each ``rprNNN_good.py`` the compliant shape of the same
code.  A rule that silently stopped firing (or started flagging the
compliant idiom) fails here long before it would mislead CI.
"""

from __future__ import annotations

from pathlib import Path

from tools.reprolint import Finding, run
from tools.reprolint.rules.vectorized import OracleCoverageRule

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def check(name: str, rule_id: str) -> list[Finding]:
    """Run one rule over one fixture file, returning its findings."""
    return run([FIXTURES / name], root=FIXTURES, select={rule_id})


def lines(findings: list[Finding]) -> list[int]:
    return [f.line for f in findings]


# ------------------------------------------------------------------ RPR001
def test_rpr001_flags_every_raw_file_mutation():
    findings = check("rpr001_bad.py", "RPR001")
    primitives = sorted(f.message.split("'")[1] for f in findings)
    assert primitives == [".rename", ".unlink", "np.savez_compressed", "shutil.rmtree"]


def test_rpr001_quiet_on_store_routed_lifecycle():
    assert check("rpr001_good.py", "RPR001") == []


def test_rpr001_catches_deliberately_broken_scratch_module(tmp_path):
    # The ISSUE's acceptance case: a scratch module writing a partition
    # file directly, bypassing the staging protocol, must be caught.
    scratch = tmp_path / "scratch.py"
    scratch.write_text(
        "import numpy as np\n"
        "def sneak_write(path, arrays):\n"
        "    np.savez_compressed(path, **arrays)\n"
    )
    findings = run([scratch], root=tmp_path, select={"RPR001"})
    assert len(findings) == 1
    assert findings[0].rule_id == "RPR001"
    assert "np.savez_compressed" in findings[0].message


# ------------------------------------------------------------------ RPR002
def test_rpr002_flags_each_dropped_delta_exactly_once():
    findings = check("rpr002_bad.py", "RPR002")
    assert len(findings) == 4
    assert len(set(lines(findings))) == 4, "a drop was double-reported"
    messages = " | ".join(f.message for f in findings)
    assert "reorganize" in messages
    assert "compute_reorg_delta" in messages
    assert "consolidate" in messages


def test_rpr002_quiet_when_deltas_reach_consumers():
    assert check("rpr002_good.py", "RPR002") == []


def test_rpr002_closure_use_counts_as_consumption(tmp_path):
    # A callback lambda reading the bound name is a legitimate use.
    module = tmp_path / "closure.py"
    module.write_text(
        "def pipelined(store, stored, layout, schema, scheduler):\n"
        "    result = reorganize(store, stored, layout, schema)\n"
        "    scheduler.on_complete(lambda: result.delta)\n"
    )
    assert run([module], root=tmp_path, select={"RPR002"}) == []


# ------------------------------------------------------------------ RPR003
def test_rpr003_flags_silent_state_transition():
    findings = check("rpr003_bad.py", "RPR003")
    assert len(findings) == 1
    assert "adopt_layout" in findings[0].message
    assert "_epoch" in findings[0].message and "_layout_id" in findings[0].message


def test_rpr003_quiet_on_transitive_emission_and_lazy_getters():
    assert check("rpr003_good.py", "RPR003") == []


# ------------------------------------------------------------------ RPR004
def test_rpr004_flags_unguarded_mutation_paths():
    findings = check("rpr004_bad.py", "RPR004")
    flagged = sorted(f.message.split(" ")[0] for f in findings)
    assert flagged == [
        "UnguardedStore.compact",
        "UnguardedStore.ingest",
        "UnguardedStore.reset",
    ]


def test_rpr004_quiet_when_guard_is_consulted_transitively():
    assert check("rpr004_good.py", "RPR004") == []


# ------------------------------------------------------------------ RPR005
def test_rpr005_flags_marked_module_without_registry_entry():
    findings = check("rpr005_bad.py", "RPR005")
    assert len(findings) == 1
    assert "no registered differential test" in findings[0].message


def test_rpr005_quiet_when_oracle_test_registered_and_tokens_present():
    rule = OracleCoverageRule(
        registry={
            "rpr005_good.py": (
                "rpr005_oracle_stub.py",
                ("FixtureKernel", "may_match"),
            )
        },
        required=frozenset({"rpr005_good.py"}),
    )
    findings = run([FIXTURES / "rpr005_good.py"], root=FIXTURES, rules=[rule])
    assert findings == []


def test_rpr005_flags_required_module_missing_the_marker():
    rule = OracleCoverageRule(registry={}, required=frozenset({"rpr006_unmarked.py"}))
    findings = run([FIXTURES / "rpr006_unmarked.py"], root=FIXTURES, rules=[rule])
    assert len(findings) == 1
    assert "must carry" in findings[0].message


def test_rpr005_flags_registered_test_that_does_not_exist():
    rule = OracleCoverageRule(
        registry={"rpr005_good.py": ("no_such_test.py", ("FixtureKernel",))},
        required=frozenset(),
    )
    findings = run([FIXTURES / "rpr005_good.py"], root=FIXTURES, rules=[rule])
    assert len(findings) == 1
    assert "does not exist" in findings[0].message


def test_rpr005_flags_registered_test_missing_the_tokens():
    rule = OracleCoverageRule(
        registry={
            # rpr008_good.py exists but references neither token.
            "rpr005_good.py": ("rpr008_good.py", ("FixtureKernel", "may_match"))
        },
        required=frozenset(),
    )
    findings = run([FIXTURES / "rpr005_good.py"], root=FIXTURES, rules=[rule])
    assert len(findings) == 1
    assert "no longer references" in findings[0].message


# ------------------------------------------------------------------ RPR006
def test_rpr006_flags_each_hygiene_violation():
    findings = check("rpr006_bad.py", "RPR006")
    messages = [f.message for f in findings]
    assert any("np.append" in m for m in messages)
    assert any("inside a loop" in m for m in messages)
    assert any("per-partition loop" in m for m in messages)
    assert any("np.asarray" in m for m in messages)
    assert len(findings) == 4


def test_rpr006_quiet_on_whole_array_kernels():
    assert check("rpr006_good.py", "RPR006") == []


def test_rpr006_ignores_unmarked_modules():
    assert check("rpr006_unmarked.py", "RPR006") == []


# ------------------------------------------------------------------ RPR007
def test_rpr007_flags_snapshot_rebind_without_notification():
    findings = check("rpr007_bad.py", "RPR007")
    assert len(findings) == 1
    assert "swap_snapshot" in findings[0].message
    assert "_snapshot" in findings[0].message


def test_rpr007_quiet_when_evaluator_is_notified():
    assert check("rpr007_good.py", "RPR007") == []


# ------------------------------------------------------------------ RPR008
def test_rpr008_flags_all_three_drift_modes():
    findings = check("rpr008_bad.py", "RPR008")
    messages = " | ".join(f.message for f in findings)
    assert "duplicate __all__ entry 'exported'" in messages
    assert "'renamed_away'" in messages
    assert "'forgotten_public_function'" in messages
    assert len(findings) == 3


def test_rpr008_quiet_on_consistent_module():
    assert check("rpr008_good.py", "RPR008") == []


def test_rpr009_flags_both_leaky_relays():
    findings = check("rpr009_bad.py", "RPR009")
    assert len(findings) == 2
    by_class = {f.message.split(" ")[0]: f.message for f in findings}
    assert set(by_class) == {"LeakyRecorder", "LeakyFanout"}
    assert "on_charge, on_commit" in by_class["LeakyRecorder"]
    assert "'_record'" in by_class["LeakyRecorder"]
    assert "on_charge" in by_class["LeakyFanout"]
    assert "on_commit" not in by_class["LeakyFanout"].split("missing")[1]


def test_rpr009_quiet_on_complete_relays_and_selective_observers():
    assert check("rpr009_good.py", "RPR009") == []


def test_rpr009_quiet_without_an_engine_events_base(tmp_path):
    # No EngineEvents class in the tree: the hook set is unknown, so the
    # rule must stay silent instead of guessing.
    module = tmp_path / "loose.py"
    module.write_text(
        "class Relay:\n"
        "    def _record(self, name):\n"
        "        pass\n"
        "    def on_open(self):\n"
        "        self._record('open')\n"
        "    def on_close(self):\n"
        "        self._record('close')\n"
    )
    assert run([module], root=tmp_path, select={"RPR009"}) == []


def test_rpr008_docs_references_resolve_against_source_tree(tmp_path):
    package = tmp_path / "src" / "repro"
    package.mkdir(parents=True)
    (package / "__init__.py").write_text('__all__ = ["Engine"]\nfrom .engine import Engine\n')
    (package / "engine.py").write_text(
        '__all__ = ["Engine"]\n\n\nclass Engine:\n    def query(self):\n        return 0\n'
    )
    (tmp_path / "README.md").write_text(
        "See `repro.engine.Engine.query` and the re-export `repro.Engine`.\n"
        "But `repro.engine.Missing` and `repro.engine.Engine.gone` drifted.\n"
        "```\n`repro.inside.a.code.fence` is never checked\n```\n"
    )
    findings = run([tmp_path / "src"], root=tmp_path, select={"RPR008"})
    messages = sorted(f.message for f in findings)
    assert len(findings) == 2
    assert "no member 'gone'" in messages[0]
    assert "repro.engine defines no 'Missing'" in messages[1]
    assert all(f.path.name == "README.md" for f in findings)
